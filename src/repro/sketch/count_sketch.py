"""Count Sketch (Charikar, Chen, Farach-Colton 2002) for real-valued streams.

This is the data structure of Algorithm 1 in the paper: ``K`` hash tables of
``R`` buckets, each with an independent bucket hash ``h_e`` and sign hash
``s_e``.  An update ``(i, v)`` adds ``v * s_e(i)`` to ``W[e, h_e(i)]``; the
estimate of key ``i`` is ``median_e W[e, h_e(i)] * s_e(i)``.

The implementation is fully batched *and fused across tables* (see PERF.md):
a single :class:`repro.hashing.MultiTableHasher` broadcast computes the
``(K, n)`` bucket and sign matrices for all tables at once, the counters
live in one flat ``(K*R,)`` array addressed as ``offset[e] + bucket``, and
inserts scatter through one ``np.bincount`` (large batches) or one
``np.add.at`` (small batches) over the flattened indices.  Queries gather
all ``K x n`` candidate estimates with one fancy index and take the median
along the table axis (a min/max network for the common small odd ``K``).
On a laptop this sustains tens of millions of updates per second, which is
what makes the trillion-entry experiments runnable.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import (
    MultiTableHasher,
    _keys_as_u64,
    _sign_bits_to_float,
)
from repro.sketch.base import (
    ValueSketch,
    ensure_mergeable,
    reject_readonly_counters,
    validate_batch,
)
from repro.sketch.kernels import numba_kernels, resolve_backend
from repro.sketch.storage import CounterStore

__all__ = ["CountSketch"]

#: Crossover (elements per table) between `np.where`-based sign application
#: (fewer kernel launches — wins on small batches) and the float-conversion
#: chain (fewer memory passes — wins on large ones).  Both are exact:
#: multiplying by ±1.0 and selecting a negation produce identical floats.
_WHERE_SIGN_MAX = 8192


def _apply_sign(bits: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``(K, n)`` float64 of ``x`` with signs applied from raw sign bits.

    ``x`` is either the value row ``(n,)`` (insert) or the gathered
    estimate matrix ``(K, n)`` (query); ``bits`` is the uint64 bit matrix
    from :meth:`repro.hashing.MultiTableHasher.sign_bits_u64`.
    """
    if bits.shape[-1] <= _WHERE_SIGN_MAX:
        return np.where(bits, -x, x)
    return _sign_bits_to_float(bits) * x


def _median_axis0(est: np.ndarray) -> np.ndarray:
    """Median along axis 0, specialised for the tiny odd ``K`` sketches use.

    For ``K`` in {1, 3, 5} the median of each column is selected with a
    min/max network — a handful of full-width vector ops instead of the
    per-column partition ``np.median`` runs.  Selection returns exactly the
    middle element, so the result is bit-identical to ``np.median`` (which
    for odd ``K`` also returns an element, not an average).  Even ``K``
    (mean of two middle elements) falls back to ``np.median``.
    """
    k = est.shape[0]
    if k == 1:
        return est[0]
    if k == 3:
        e0, e1, e2 = est
        return np.maximum(np.minimum(e0, e1), np.minimum(np.maximum(e0, e1), e2))
    if k == 5:
        e0, e1, e2, e3, e4 = est
        lo01, hi01 = np.minimum(e0, e1), np.maximum(e0, e1)
        lo23, hi23 = np.minimum(e2, e3), np.maximum(e2, e3)
        lo = np.maximum(lo01, lo23)  # 3rd-smallest candidate from below
        hi = np.minimum(hi01, hi23)  # 3rd-smallest candidate from above
        m1, m2 = np.minimum(lo, hi), np.maximum(lo, hi)
        return np.minimum(np.maximum(e4, m1), m2)
    return np.median(est, axis=0)


class CountSketch(ValueSketch):
    """A ``K x R`` count sketch with signed updates and median estimates.

    Parameters
    ----------
    num_tables:
        ``K`` — number of independent hash tables (the paper uses 5).
    num_buckets:
        ``R`` — buckets per table.  Total memory is ``K * R`` floats.
    seed:
        Seed for all hash functions; two sketches built with identical
        parameters and seed are mergeable.
    family:
        Hash family name (see :func:`repro.hashing.make_family`).
    dtype:
        Counter storage (see :mod:`repro.sketch.storage`): ``float64`` by
        default; ``float32`` halves memory at the cost of accumulation
        precision; ``int16``/``int32`` store fixed-point multiples of
        ``quantum`` at 2/4 bytes per counter, widening automatically (and
        exactly) on saturation.
    quantum:
        Fixed-point step for quantized storage
        (:data:`repro.sketch.storage.DEFAULT_QUANTUM` when omitted for an
        integer dtype).
    backend:
        Kernel backend for the hot paths (see
        :mod:`repro.sketch.kernels`): ``"numpy"``, ``"numba"`` or
        ``"auto"`` (the default; the ``REPRO_KERNEL_BACKEND`` env var
        overrides an unset argument).  The compiled backend is
        bit-identical to numpy and falls back to it gracefully when
        numba is absent; runtime configuration only — never serialised.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        dtype=np.float64,
        quantum: float | None = None,
        backend: str | None = None,
    ):
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        # The storage backend owns the (K, R) table and its flat view; the
        # fused kernels address counter (e, b) as raw[e * R + b].
        self._store = CounterStore(
            self.num_tables, self.num_buckets, dtype=dtype, quantum=quantum
        )
        self._offsets_u64 = (
            np.arange(self.num_tables, dtype=np.uint64) * np.uint64(self.num_buckets)
        )[:, None]

        # Derive one independent (bucket, sign) hash pair per table from the
        # master seed.  SeedSequence spawning guarantees independence; the
        # per-table parameters are stacked so one broadcast hashes all K
        # tables (bit-identical to K separate families with these seeds).
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(2 * self.num_tables)
        self._hasher = MultiTableHasher(
            family,
            self.num_buckets,
            [int(children[2 * e].generate_state(1)[0]) for e in range(self.num_tables)],
            sign_seeds=[
                int(children[2 * e + 1].generate_state(1)[0])
                for e in range(self.num_tables)
            ],
            sign_family="multiply-shift",
        )
        # Optional hash cache for a canonical key array (dense streaming
        # passes the same arange(p) object every batch — see cache_keys).
        self._cached_keys: np.ndarray | None = None
        self._cached_flat_indices: np.ndarray | None = None
        self._cached_signs: np.ndarray | None = None

        # Compiled-kernel plumbing.  The resolved backend is runtime
        # configuration (never serialised); _jit_args holds the flattened
        # hash parameters the kernels consume, and stays None whenever
        # this sketch cannot take the compiled path at all (non-fused
        # family, quantized storage) so per-op checks stay cheap.
        self.backend = resolve_backend(backend)
        self._jit_args = None
        if (
            self.backend == "numba"
            and self._hasher._combined_a is not None
            and self._store.quantum is None
        ):
            mask = self._hasher._bucket_mask
            self._jit_args = (
                self._hasher._combined_a.ravel(),
                self._hasher._combined_b.ravel(),
                self._offsets_u64.ravel(),
                np.uint64(self.num_buckets),
                np.uint64(0) if mask is None else mask,
                mask is not None,
            )

    # ------------------------------------------------------------------
    # Storage views
    # ------------------------------------------------------------------
    @property
    def table(self) -> np.ndarray:
        """The ``(K, R)`` counter table (raw storage units)."""
        return self._store.matrix

    @property
    def _flat(self) -> np.ndarray:
        return self._store.raw

    @property
    def quantum(self) -> float | None:
        """Fixed-point step of quantized storage (``None`` for float)."""
        return self._store.quantum

    @property
    def storage_dtype(self) -> np.dtype:
        """Current counter dtype (may have widened past the declared one)."""
        return self._store.dtype

    @property
    def saturation(self) -> float:
        """Counter-range headroom signal (see ``CounterStore.saturation``)."""
        return self._store.saturation

    # ------------------------------------------------------------------
    # Hash caching
    # ------------------------------------------------------------------
    def _hash_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused ``(flat_indices, sign_bits)`` for all tables in one broadcast.

        ``flat_indices`` is the ``(K, n)`` int64 matrix ``e*R + h_e(key)``
        addressing :attr:`_flat`; ``sign_bits`` is the raw ``(K, n)`` uint64
        bit matrix (0 => +1, 1 => -1), converted to floats only where a
        caller actually needs them (see :func:`_apply_sign`).
        """
        w, bits = self._hasher.bucket_sign_u64(keys)
        np.add(w, self._offsets_u64, out=w)
        return w.view(np.int64), bits

    def cache_keys(self, keys: np.ndarray) -> None:
        """Precompute buckets/signs for a canonical key array.

        Dense covariance streaming queries and inserts the *same*
        ``arange(p)`` array object every batch; caching its hashes removes
        roughly half the insert cost and a fifth of the query cost.  The
        cache is keyed by object identity, so passing any other array falls
        back to the normal path.
        """
        keys = np.asarray(keys, dtype=np.int64)
        flat_indices, bits = self._hash_batch(keys)
        self._cached_keys = keys
        self._cached_flat_indices = flat_indices
        self._cached_signs = _sign_bits_to_float(bits)

    def _lookup(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """``(flat_indices, sign_bits, signs)`` using the cache when possible.

        Exactly one of ``sign_bits`` (fresh hash) and ``signs`` (cache hit,
        already converted to float) is non-None.
        """
        if keys is self._cached_keys:
            return self._cached_flat_indices, None, self._cached_signs
        flat_indices, bits = self._hash_batch(keys)
        return flat_indices, bits, None

    # ------------------------------------------------------------------
    # Compiled-kernel dispatch
    # ------------------------------------------------------------------
    def _jit_kernels(self, keys):
        """``(module, flat)`` for the compiled path, or ``None``.

        The compiled kernels cover the common hot configuration: the
        fused multiply-shift family, plain float64 counters that are not
        mmap-backed, and a fresh (uncached) key batch.  Everything else
        — cache hits, quantized or widened storage, serving snapshots —
        transparently takes the numpy path, which is bit-identical.
        """
        if self._jit_args is None or keys is self._cached_keys:
            return None
        store = self._store
        if store.quantum is not None or store.dtype != np.float64:
            return None
        raw = store.raw
        if isinstance(raw, np.memmap):
            return None
        module = numba_kernels()
        if module is None:  # pragma: no cover - unpickled without numba
            return None
        return module, raw

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def insert(self, keys, values) -> None:
        # np.asarray inside validate_batch preserves object identity for
        # int64 input, so the hash cache still hits after validation.
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        jit = self._jit_kernels(keys)
        if jit is not None:
            module, flat = jit
            reject_readonly_counters(flat)
            a, b, offsets, r_u64, mask, use_mask = self._jit_args
            module.cs_insert(
                flat,
                _keys_as_u64(keys),
                np.ascontiguousarray(values),
                a,
                b,
                offsets,
                r_u64,
                mask,
                use_mask,
                keys.size * 16 >= self.num_buckets,
            )
            return
        self._scatter(self._lookup(keys), values)

    def insert_and_query(self, keys, values) -> np.ndarray:
        """Insert a batch and return its post-insert estimates in one pass.

        Bit-identical to ``insert(keys, values)`` followed by
        ``query(keys)``, but the buckets and signs are hashed once instead
        of twice — the streaming estimators use this for their candidate
        tracker refresh.
        """
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        jit = self._jit_kernels(keys)
        if jit is not None and self.num_tables in (1, 3, 5):
            module, flat = jit
            reject_readonly_counters(flat)
            a, b, offsets, r_u64, mask, use_mask = self._jit_args
            out = np.empty(keys.size, dtype=np.float64)
            module.cs_insert_and_query(
                flat,
                _keys_as_u64(keys),
                np.ascontiguousarray(values),
                a,
                b,
                offsets,
                r_u64,
                mask,
                use_mask,
                keys.size * 16 >= self.num_buckets,
                out,
            )
            return out
        hashed = self._lookup(keys)
        self._scatter(hashed, values)
        return _median_axis0(self._estimates(hashed))

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("keys must be a 1-D array")
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        jit = self._jit_kernels(keys)
        if jit is not None and self.num_tables in (1, 3, 5):
            module, flat = jit
            a, b, offsets, r_u64, mask, use_mask = self._jit_args
            out = np.empty(keys.size, dtype=np.float64)
            module.cs_query(
                flat, _keys_as_u64(keys), a, b, offsets, r_u64, mask, use_mask, out
            )
            return out
        return _median_axis0(self._estimates(self._lookup(keys)))

    def query_per_table(self, keys) -> np.ndarray:
        """All ``K`` per-table estimates (rows) for diagnostic use."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty((self.num_tables, 0), dtype=np.float64)
        return self._estimates(self._lookup(keys))

    def _scatter(self, hashed, values: np.ndarray) -> None:
        """Accumulate signed ``values`` through precomputed hashes."""
        flat_indices, bits, signs = hashed
        signed = signs * values if signs is not None else _apply_sign(bits, values)
        # bincount beats add.at once the batch is a reasonable fraction of R;
        # for tiny batches the dense bincount allocation dominates.  The
        # threshold matches the pre-fusion per-table rule so the float
        # accumulation order (hence the result) is unchanged.
        self._store.scatter_add(
            flat_indices.ravel(),
            signed.ravel(),
            use_bincount=flat_indices.shape[1] * 16 >= self.num_buckets,
        )

    def _estimates(self, hashed) -> np.ndarray:
        """Per-table signed estimates ``(K, n)`` via one fancy-index gather."""
        flat_indices, bits, signs = hashed
        # Estimates stay float64 whatever the storage (f32 counters upcast
        # exactly; quantized counters dequantize), as the per-table legacy
        # loop produced.
        gathered = self._store.gather(flat_indices)
        if signs is not None:
            return gathered * signs
        return _apply_sign(bits, gathered)

    def reset(self) -> None:
        self._store.zero()

    def freeze(self) -> "CountSketch":
        """Make the counter storage read-only (in place) and return ``self``.

        A frozen sketch still answers ``query`` (gathers never write), but
        any ``insert``/``merge``/``reset`` raises numpy's read-only error —
        the guarantee serving snapshots rely on: a query-side view can never
        be mutated by a stray write path.
        """
        self._store.freeze()
        return self

    def _check_compatible(self, other: "CountSketch") -> None:
        ensure_mergeable(
            self, other, ("num_tables", "num_buckets", "seed", "family")
        )
        self._store.check_mergeable(other._store, "CountSketch")

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Add another sketch's counters in place (distributed aggregation)."""
        self._check_compatible(other)
        self._store.merge_from(other._store)
        return self

    def add_table(self, table: np.ndarray) -> "CountSketch":
        """Sum a raw counter table (same shape/unit) in place.

        The reducer-side half of the merge law for persisted shard states:
        quantized storage widens exactly as ingesting the same mass would,
        instead of silently wrapping a narrow integer add.
        """
        self._store.add_raw(table)
        return self

    def load_table(self, table: np.ndarray) -> "CountSketch":
        """Replace the counters with a persisted raw table (adopting width)."""
        self._store.load_raw(table)
        return self

    def scale(self, factor: float) -> "CountSketch":
        """Multiply every counter value by ``factor`` in place.

        Quantized storage folds the factor into its quantum (exact); float
        storage scales the table as before.
        """
        self._store.scale(factor)
        return self

    def copy(self) -> "CountSketch":
        clone = CountSketch(
            self.num_tables,
            self.num_buckets,
            seed=self.seed,
            family=self.family,
            backend=self.backend,
        )
        clone._store = self._store.copy()
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets

    def l2_norm(self) -> float:
        """Frobenius norm of the counter values — tracks stream energy."""
        if self._store.quantum is not None:
            norm = np.linalg.norm(self.table.astype(np.float64))
            return float(norm * self._store.quantum)
        return float(np.linalg.norm(self.table))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        storage = (
            "" if self._store.quantum is None and self._store.dtype == np.float64
            else f", storage={self._store!r}"
        )
        return (
            f"CountSketch(K={self.num_tables}, R={self.num_buckets}, "
            f"family={self.family!r}, seed={self.seed}{storage})"
        )
