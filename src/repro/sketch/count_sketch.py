"""Count Sketch (Charikar, Chen, Farach-Colton 2002) for real-valued streams.

This is the data structure of Algorithm 1 in the paper: ``K`` hash tables of
``R`` buckets, each with an independent bucket hash ``h_e`` and sign hash
``s_e``.  An update ``(i, v)`` adds ``v * s_e(i)`` to ``W[e, h_e(i)]``; the
estimate of key ``i`` is ``median_e W[e, h_e(i)] * s_e(i)``.

The implementation is fully batched: inserts scatter whole arrays via
``np.bincount`` (large batches) or ``np.add.at`` (small batches), and queries
gather ``K x n`` candidate estimates and take the median along the table
axis.  On a laptop this sustains tens of millions of updates per second,
which is what makes the trillion-entry experiments runnable.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import SignHash, make_family
from repro.sketch.base import ValueSketch, validate_batch

__all__ = ["CountSketch"]


class CountSketch(ValueSketch):
    """A ``K x R`` count sketch with signed updates and median estimates.

    Parameters
    ----------
    num_tables:
        ``K`` — number of independent hash tables (the paper uses 5).
    num_buckets:
        ``R`` — buckets per table.  Total memory is ``K * R`` floats.
    seed:
        Seed for all hash functions; two sketches built with identical
        parameters and seed are mergeable.
    family:
        Hash family name (see :func:`repro.hashing.make_family`).
    dtype:
        Counter dtype; ``float64`` by default, ``float32`` halves memory at
        the cost of accumulation precision.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        dtype=np.float64,
    ):
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.table = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)

        # Derive one independent (bucket, sign) hash pair per table from the
        # master seed.  SeedSequence spawning guarantees independence.
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(2 * self.num_tables)
        self._bucket_hashes = [
            make_family(family, self.num_buckets, int(children[2 * e].generate_state(1)[0]))
            for e in range(self.num_tables)
        ]
        self._sign_hashes = [
            SignHash(int(children[2 * e + 1].generate_state(1)[0]), family="multiply-shift")
            for e in range(self.num_tables)
        ]
        # Optional hash cache for a canonical key array (dense streaming
        # passes the same arange(p) object every batch — see cache_keys).
        self._cached_keys: np.ndarray | None = None
        self._cached_buckets: np.ndarray | None = None
        self._cached_signs: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Hash caching
    # ------------------------------------------------------------------
    def cache_keys(self, keys: np.ndarray) -> None:
        """Precompute buckets/signs for a canonical key array.

        Dense covariance streaming queries and inserts the *same*
        ``arange(p)`` array object every batch; caching its hashes removes
        roughly half the insert cost and a fifth of the query cost.  The
        cache is keyed by object identity, so passing any other array falls
        back to the normal path.
        """
        keys = np.asarray(keys, dtype=np.int64)
        buckets = np.empty((self.num_tables, keys.size), dtype=np.int64)
        signs = np.empty((self.num_tables, keys.size), dtype=np.float64)
        for e in range(self.num_tables):
            buckets[e] = self._bucket_hashes[e](keys)
            signs[e] = self._sign_hashes[e](keys)
        self._cached_keys = keys
        self._cached_buckets = buckets
        self._cached_signs = signs

    def _lookup(self, e: int, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs) for table ``e``, using the cache when possible."""
        if keys is self._cached_keys:
            return self._cached_buckets[e], self._cached_signs[e]
        return self._bucket_hashes[e](keys), self._sign_hashes[e](keys)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def insert(self, keys, values) -> None:
        # np.asarray inside validate_batch preserves object identity for
        # int64 input, so the hash cache still hits after validation.
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        # bincount beats add.at once the batch is a reasonable fraction of R;
        # for tiny batches the dense bincount allocation dominates.
        use_bincount = keys.size * 16 >= self.num_buckets
        for e in range(self.num_tables):
            buckets, signs = self._lookup(e, keys)
            signed = values * signs
            if use_bincount:
                self.table[e] += np.bincount(
                    buckets, weights=signed, minlength=self.num_buckets
                ).astype(self.table.dtype, copy=False)
            else:
                np.add.at(self.table[e], buckets, signed)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("keys must be a 1-D array")
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        estimates = np.empty((self.num_tables, keys.size), dtype=np.float64)
        for e in range(self.num_tables):
            buckets, signs = self._lookup(e, keys)
            estimates[e] = self.table[e, buckets] * signs
        return np.median(estimates, axis=0)

    def query_per_table(self, keys) -> np.ndarray:
        """All ``K`` per-table estimates (rows) for diagnostic use."""
        keys = np.asarray(keys, dtype=np.int64)
        estimates = np.empty((self.num_tables, keys.size), dtype=np.float64)
        for e in range(self.num_tables):
            buckets = self._bucket_hashes[e](keys)
            estimates[e] = self.table[e, buckets] * self._sign_hashes[e](keys)
        return estimates

    def reset(self) -> None:
        self.table[:] = 0.0

    # ------------------------------------------------------------------
    # Linear-sketch algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "CountSketch") -> None:
        same = (
            isinstance(other, CountSketch)
            and other.num_tables == self.num_tables
            and other.num_buckets == self.num_buckets
            and other.seed == self.seed
            and other.family == self.family
        )
        if not same:
            raise ValueError(
                "sketches are mergeable only with identical shape, seed and family"
            )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Add another sketch's counters in place (distributed aggregation)."""
        self._check_compatible(other)
        self.table += other.table
        return self

    def scale(self, factor: float) -> "CountSketch":
        """Multiply every counter by ``factor`` in place."""
        self.table *= float(factor)
        return self

    def copy(self) -> "CountSketch":
        clone = CountSketch(
            self.num_tables,
            self.num_buckets,
            seed=self.seed,
            family=self.family,
            dtype=self.table.dtype,
        )
        clone.table[:] = self.table
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets

    def l2_norm(self) -> float:
        """Frobenius norm of the counter matrix — tracks stream energy."""
        return float(np.linalg.norm(self.table))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountSketch(K={self.num_tables}, R={self.num_buckets}, "
            f"family={self.family!r}, seed={self.seed})"
        )
