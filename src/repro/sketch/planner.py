"""Capacity planner for the compact memory tier.

The paper sizes sketches in *counters* (``M`` floats, ``R = M / K``); the
memory tier makes *bytes per counter* the real lever: at a fixed byte
budget, int16 fixed-point storage buys 4x the buckets of float64, and
collision noise shrinks linearly in ``R`` (Lemma 1's ``1/R`` variance),
while the quantization it introduces is bounded by half a quantum — orders
of magnitude below the paper's signal strengths.

:func:`plan` turns ``(n_features, memory budget)`` into a concrete
``(K, R, dtype, quantum)`` recommendation::

    from repro.sketch.planner import plan

    p = plan(n_features=1_000_000, budget_mb=64)
    sketch = p.build_sketch(seed=7)          # ready for SketchEstimator
    p.predicted_bytes_per_counter            # 2.0 for int16
    p.measured_bytes_per_counter(sketch)     # == 2.0 until promotion

and reports the prediction the benchmarks verify: predicted vs measured
bytes/counter (``benchmarks/bench_memory.py`` commits the measured
numbers to ``BENCH_memory.json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hashing.pairs import num_pairs
from repro.sketch.count_sketch import CountSketch
from repro.sketch.hierarchical import HierarchicalCountSketch
from repro.sketch.kernels import resolve_backend
from repro.sketch.storage import STORAGE_DTYPES, resolve_storage

__all__ = ["CapacityPlan", "ObservedSignals", "Replan", "plan", "replan"]


def _require_finite(name: str, value) -> float:
    """Reject NaN/inf knobs before they poison a quantum downstream.

    ``NaN <= 0`` is False, so a NaN budget or value range sails past every
    ordering check and turns into a NaN quantum that silently zeroes (or
    NaN-fills) every quantized table built from the plan.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value

#: Storage candidates, narrowest first — the order :func:`plan` tries.
_CANDIDATES = ("int16", "int32", "float32", "float64")

#: Default ratio of the int range reserved above ``value_range``: with
#: headroom 1.25, values may overshoot the declared range by 25% before
#: the (exact, automatic) widening kicks in.
DEFAULT_HEADROOM = 1.25


@dataclass(frozen=True)
class CapacityPlan:
    """A concrete sketch sizing for one (features, budget) problem.

    Attributes
    ----------
    n_features, num_pairs:
        The problem: ``d`` features stream ``d*(d-1)/2`` pair keys.
    budget_bytes:
        The byte budget the plan was fitted to.
    num_tables, num_buckets, storage, quantum:
        The recommendation: build with :meth:`build_sketch`.
    predicted_bytes_per_counter:
        Bytes each counter occupies while the declared dtype holds
        (quantized tables widen — exactly — if the stream saturates them;
        :meth:`measured_bytes_per_counter` reports the realised figure).
    counters_vs_float64:
        How many more counters this storage affords than float64 at the
        same budget (4.0 for int16).
    predicted_snr_gain_db:
        Collision-noise reduction vs a float64 plan at the same budget:
        variance scales as ``1/R`` (Lemma 1), so
        ``10 * log10(counters_vs_float64)``.
    quantization_step_rel:
        ``quantum / value_range`` — the relative resolution floor
        quantization adds (0 for float storage).
    levels, branching:
        Hierarchical-index depth and fan-out.  ``levels == 1`` is the flat
        sketch; deeper plans split the byte budget evenly across levels
        (each level is a full ``K x R`` table), buying open-world
        ``find_heavy`` discovery at the cost of ``1/levels`` of the
        buckets — the depth-vs-width trade the planner makes explicit.
    kernel_backend:
        The kernel backend the built sketch will run on
        (:mod:`repro.sketch.kernels`), resolved at planning time from
        ``$REPRO_KERNEL_BACKEND`` / auto-detection.  Informational for
        throughput expectations only — estimates are bit-identical across
        backends, so the capacity math above does not depend on it.  Note
        the compiled path only engages on float64 storage: quantized plans
        (int16/int32) run the numpy path regardless.
    """

    n_features: int
    num_pairs: int
    budget_bytes: int
    num_tables: int
    num_buckets: int
    storage: str
    quantum: float | None
    predicted_bytes_per_counter: float
    counters_vs_float64: float
    predicted_snr_gain_db: float
    quantization_step_rel: float
    levels: int = 1
    branching: int = 16
    kernel_backend: str = "numpy"

    @property
    def total_counters(self) -> int:
        return self.levels * self.num_tables * self.num_buckets

    @property
    def predicted_total_bytes(self) -> int:
        return int(self.total_counters * self.predicted_bytes_per_counter)

    def build_sketch(
        self,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        backend: str | None = None,
    ):
        """A sketch following this plan.

        Flat plans (``levels == 1``) build a
        :class:`~repro.sketch.CountSketch`; deeper plans build a
        :class:`~repro.sketch.HierarchicalCountSketch` over the pair-key
        space, ready for open-world ``find_heavy`` discovery.  ``backend``
        overrides the kernel backend (default: the plan's resolved
        :attr:`kernel_backend`).
        """
        resolved = self.kernel_backend if backend is None else backend
        if self.levels > 1:
            return HierarchicalCountSketch(
                self.num_tables,
                self.num_buckets,
                key_space=self.num_pairs,
                branching=self.branching,
                levels=self.levels,
                seed=seed,
                family=family,
                dtype=self.storage,
                quantum=self.quantum,
                backend=resolved,
            )
        return CountSketch(
            self.num_tables,
            self.num_buckets,
            seed=seed,
            family=family,
            dtype=self.storage,
            quantum=self.quantum,
            backend=resolved,
        )

    def measured_bytes_per_counter(self, sketch) -> float:
        """Realised bytes/counter of a (possibly fitted) sketch.

        Compare with :attr:`predicted_bytes_per_counter`: a gap means the
        stream saturated the declared dtype and the table widened.
        """
        return sketch.memory_bytes / sketch.memory_floats

    def to_dict(self) -> dict:
        """JSON-ready summary (benchmarks embed this in their reports)."""
        return {
            "n_features": self.n_features,
            "num_pairs": self.num_pairs,
            "budget_bytes": self.budget_bytes,
            "num_tables": self.num_tables,
            "num_buckets": self.num_buckets,
            "storage": self.storage,
            "quantum": self.quantum,
            "predicted_bytes_per_counter": self.predicted_bytes_per_counter,
            "counters_vs_float64": self.counters_vs_float64,
            "predicted_snr_gain_db": self.predicted_snr_gain_db,
            "levels": self.levels,
            "branching": self.branching,
            "kernel_backend": self.kernel_backend,
            "throughput_note": self.throughput_note,
        }

    @property
    def throughput_note(self) -> str:
        """One-line expectation of which code path inserts will take."""
        if self.kernel_backend == "numba" and self.storage == "float64":
            return "inserts run the compiled (numba) kernels"
        if self.kernel_backend == "numba":
            return (
                f"numba resolved, but {self.storage} storage runs the "
                "numpy path (compiled kernels require float64 counters)"
            )
        return "inserts run the vectorised numpy kernels"


def plan(
    n_features: int,
    budget_mb: float,
    *,
    num_tables: int = 5,
    storage: str | None = None,
    value_range: float = 1.0,
    target_f1: float | None = None,
    quantization_tolerance: float | None = None,
    headroom: float = DEFAULT_HEADROOM,
    pow2_buckets: bool = False,
    levels: int = 1,
    branching: int = 16,
) -> CapacityPlan:
    """Recommend ``(K, R, dtype, quantum)`` for a byte budget.

    Parameters
    ----------
    n_features:
        Feature dimension ``d`` of the covariance problem (the key space
        is its pair count — reported on the plan for sanity checks).
    budget_mb:
        Counter-memory budget in MiB.
    num_tables:
        ``K`` (the paper's 5 unless you know better).
    storage:
        Pin a storage dtype instead of letting the planner pick.  When
        ``None`` the narrowest candidate whose relative quantization step
        is below the tolerance wins — int16 for every realistic
        correlation workload.
    value_range:
        Largest accumulated |counter| the tables must represent without
        widening.  Sets the fixed-point quantum:
        ``headroom * value_range / int_max``.  Note a *bucket* holds the
        signed sum of every colliding key's mass, so on dense signal
        regimes (many strong pairs per bucket — ``alpha * p / R`` large)
        counters can stack past the per-estimate bound; exceeding it is
        always safe — the table widens exactly — it just costs the bytes
        the narrow rung promised to save (1.0 works for correlation mode
        with sparse signals; pass the expected stack height otherwise).
    target_f1, quantization_tolerance:
        Accuracy demand.  ``quantization_tolerance`` bounds
        ``quantum / value_range`` directly; ``target_f1`` is a convenience
        mapping (``1 - target_f1``, clamped to [1e-5, 0.05]) for callers
        thinking in retrieval terms.  Defaults to 1e-3 — roughly 30x
        coarser than int16 actually delivers, so int16 is the default
        recommendation, as it should be.
    headroom:
        Saturation margin above ``value_range`` (see
        :data:`DEFAULT_HEADROOM`).  Exceeding it is safe — the table
        widens exactly — it just costs the memory the plan promised to
        save.
    pow2_buckets:
        Round ``R`` down to a power of two (bitmask bucket ranges).
    levels, branching:
        Hierarchical-index depth and fan-out (``levels == 1`` keeps the
        flat sketch).  A depth-``L`` plan holds ``L`` full ``K x R``
        tables, so the same byte budget buys ``1/L`` of the buckets —
        collision noise grows by ``10*log10(L)`` dB in exchange for
        open-world ``find_heavy`` discovery over the whole pair space.
    """
    if n_features < 2:
        raise ValueError(f"n_features must be >= 2, got {n_features}")
    budget_mb = _require_finite("budget_mb", budget_mb)
    if budget_mb <= 0:
        raise ValueError(f"budget_mb must be > 0, got {budget_mb}")
    if num_tables < 1:
        raise ValueError(f"num_tables must be >= 1, got {num_tables}")
    value_range = _require_finite("value_range", value_range)
    if value_range <= 0:
        raise ValueError(f"value_range must be > 0, got {value_range}")
    headroom = _require_finite("headroom", headroom)
    if headroom < 1.0:
        raise ValueError(f"headroom must be >= 1, got {headroom}")
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    if quantization_tolerance is None:
        if target_f1 is not None:
            target_f1 = _require_finite("target_f1", target_f1)
            if not 0.0 < target_f1 < 1.0:
                raise ValueError(f"target_f1 must be in (0, 1), got {target_f1}")
            quantization_tolerance = min(max(1.0 - target_f1, 1e-5), 0.05)
        else:
            quantization_tolerance = 1e-3
    else:
        quantization_tolerance = _require_finite(
            "quantization_tolerance", quantization_tolerance
        )

    budget_bytes = int(budget_mb * (1 << 20))

    def step_rel(name: str) -> float:
        dtype = np.dtype(name)
        if dtype.kind != "i":
            return 0.0
        return headroom / float(np.iinfo(dtype).max)

    if storage is not None:
        chosen = resolve_storage(storage).name
    else:
        chosen = "float64"
        for candidate in _CANDIDATES:
            if step_rel(candidate) <= quantization_tolerance:
                chosen = candidate
                break
    if chosen not in STORAGE_DTYPES:  # pragma: no cover - resolve_storage guards
        raise ValueError(f"unsupported storage {chosen!r}")

    itemsize = np.dtype(chosen).itemsize
    # The budget covers every level's K x R table, so depth divides width.
    num_buckets = max(16, budget_bytes // (levels * num_tables * itemsize))
    if pow2_buckets:
        num_buckets = 1 << (int(num_buckets).bit_length() - 1)
    # The float64 reference also carries `levels` tables: the reported SNR
    # gain isolates the storage effect, not the depth-vs-width trade.
    buckets_f64 = max(16, budget_bytes // (levels * num_tables * 8))
    if pow2_buckets:
        buckets_f64 = 1 << (int(buckets_f64).bit_length() - 1)

    quantum = None
    if np.dtype(chosen).kind == "i":
        quantum = headroom * value_range / float(np.iinfo(np.dtype(chosen)).max)

    gain = num_buckets / buckets_f64
    return CapacityPlan(
        kernel_backend=resolve_backend(None),
        n_features=int(n_features),
        num_pairs=int(num_pairs(int(n_features))),
        budget_bytes=budget_bytes,
        num_tables=int(num_tables),
        num_buckets=int(num_buckets),
        storage=chosen,
        quantum=quantum,
        predicted_bytes_per_counter=float(itemsize),
        counters_vs_float64=float(gain),
        predicted_snr_gain_db=float(10.0 * np.log10(gain)) if gain > 0 else 0.0,
        quantization_step_rel=float(step_rel(chosen)),
        levels=int(levels),
        branching=int(branching),
    )


@dataclass(frozen=True)
class ObservedSignals:
    """What the live system measured — the input half of :func:`replan`.

    Fields default to ``None`` (= not observed); :func:`replan` skips any
    trigger whose signal is missing or non-finite, so a partially
    instrumented stack degrades to fewer triggers instead of garbage
    decisions.

    Attributes
    ----------
    samples_seen:
        Write-side stream position when the observation was taken.
    collision_energy:
        Mean squared estimate at never-inserted sentinel keys
        (:class:`repro.obs.AccuracyProbe`) — pure collision/noise mass,
        the live proxy for Lemma 1's ``||f||^2 / R`` variance.
    rosnr:
        Observed SNR over the baseline SNR (the probe's ROSNR gauge, or
        the read-side ``estimate_snr`` normalised by its first reading).
    topk_churn:
        Fraction of the top-K set replaced since the last probe sample —
        the drift signal.
    saturation:
        Largest |counter| as a fraction of the quantized dtype's range
        (:attr:`repro.sketch.storage.CounterStore.saturation`); 0 for
        float storage.
    """

    samples_seen: int = 0
    collision_energy: float | None = None
    rosnr: float | None = None
    topk_churn: float | None = None
    saturation: float | None = None


@dataclass(frozen=True)
class Replan:
    """One re-planning decision: the action, the new plan, and why.

    ``action`` is one of ``"hold"`` (no change), ``"grow"`` (wider
    buckets at a bigger byte budget), ``"demote"`` (same shape, cold
    history pushed onto the int16 fixed-point rung) or
    ``"escalate_decay"`` (same sketch, ``window_scale`` < 1 asks the
    windowed write side to retain fewer panes — the pane-ring spelling of
    a faster decay).  ``plan`` is always a complete :class:`CapacityPlan`
    (equal to ``current`` for holds and pure window changes), so callers
    migrate with a full recipe, never a diff they must apply themselves.
    """

    action: str
    plan: CapacityPlan
    reason: str
    window_scale: float = 1.0

    @property
    def changed(self) -> bool:
        return self.action != "hold"


def _sized(current: CapacityPlan, *, budget_bytes: int, storage: str) -> CapacityPlan:
    """Re-run :func:`plan` for a new budget/storage, keeping the rest."""
    return plan(
        current.n_features,
        budget_bytes / float(1 << 20),
        num_tables=current.num_tables,
        storage=storage,
        levels=current.levels,
        branching=current.branching,
    )


def replan(
    current: CapacityPlan,
    observed: ObservedSignals,
    *,
    collision_ceiling: float | None = None,
    rosnr_floor: float | None = None,
    churn_ceiling: float | None = 0.5,
    saturation_ceiling: float | None = 0.85,
    demote_collision_floor: float | None = None,
    growth: float = 2.0,
    window_shrink: float = 0.5,
    max_budget_bytes: int | None = None,
) -> Replan:
    """The planner-loop delta API: ``(current plan, observations) -> next``.

    A pure function — no clocks, no cooldowns, no migration mechanics;
    :class:`repro.autoscale.AutoScaler` owns cadence and execution.  The
    triggers, checked in severity order (first match wins):

    1. **saturation** >= ``saturation_ceiling`` — the quantized table is
       about to widen (which is exact but silently doubles residency);
       grow instead, spreading mass over more buckets.
    2. **collision_energy** > ``collision_ceiling`` or **rosnr** <
       ``rosnr_floor`` — collision noise ate the SNR margin; grow the
       byte budget by ``growth`` (collision variance shrinks as ``1/R``,
       Lemma 1).
    3. **topk_churn** > ``churn_ceiling`` — the heavy set itself is
       moving (drift); keep the sketch, shrink the retained window by
       ``window_shrink`` so stale mass ages out faster.
    4. **collision_energy** < ``demote_collision_floor`` on float storage
       — quiet regime; demote cold history to int16 fixed point at the
       same ``(K, R)`` (4x fewer bytes, quantization noise bounded by
       half a quantum).

    ``None`` disables a trigger; non-finite thresholds are rejected, and
    non-finite *observations* are treated as missing (a probe that has
    not closed a window yet reports NaN — that must never trigger a
    migration).  ``max_budget_bytes`` caps growth: at the cap the grow
    triggers hold instead, so a noisy workload cannot ratchet memory
    unboundedly.
    """
    for name, threshold in (
        ("collision_ceiling", collision_ceiling),
        ("rosnr_floor", rosnr_floor),
        ("churn_ceiling", churn_ceiling),
        ("saturation_ceiling", saturation_ceiling),
        ("demote_collision_floor", demote_collision_floor),
    ):
        if threshold is not None:
            _require_finite(name, threshold)
    growth = _require_finite("growth", growth)
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    window_shrink = _require_finite("window_shrink", window_shrink)
    if not 0.0 < window_shrink < 1.0:
        raise ValueError(f"window_shrink must be in (0, 1), got {window_shrink}")

    def signal(value: float | None) -> float | None:
        if value is None:
            return None
        value = float(value)
        return value if math.isfinite(value) else None

    collision = signal(observed.collision_energy)
    rosnr = signal(observed.rosnr)
    churn = signal(observed.topk_churn)
    saturation = signal(observed.saturation)

    def grow(reason: str) -> Replan:
        target = int(current.budget_bytes * growth)
        if max_budget_bytes is not None and target > max_budget_bytes:
            if current.budget_bytes >= max_budget_bytes:
                return Replan(
                    "hold",
                    current,
                    f"{reason}; already at the {max_budget_bytes}-byte cap",
                )
            target = int(max_budget_bytes)
        return Replan(
            "grow",
            _sized(current, budget_bytes=target, storage=current.storage),
            reason,
        )

    if saturation_ceiling is not None and saturation is not None:
        if saturation >= saturation_ceiling:
            return grow(
                f"counter saturation {saturation:.2f} >= {saturation_ceiling:.2f}"
            )
    if collision_ceiling is not None and collision is not None:
        if collision > collision_ceiling:
            return grow(
                f"collision energy {collision:.3g} > {collision_ceiling:.3g}"
            )
    if rosnr_floor is not None and rosnr is not None:
        if rosnr < rosnr_floor:
            return grow(f"ROSNR {rosnr:.3g} < floor {rosnr_floor:.3g}")
    if churn_ceiling is not None and churn is not None:
        if churn > churn_ceiling:
            return Replan(
                "escalate_decay",
                current,
                f"top-K churn {churn:.2f} > {churn_ceiling:.2f}",
                window_scale=window_shrink,
            )
    if (
        demote_collision_floor is not None
        and collision is not None
        and collision < demote_collision_floor
        and np.dtype(current.storage).kind == "f"
    ):
        demoted = _sized(
            current,
            budget_bytes=current.levels
            * current.num_tables
            * current.num_buckets
            * np.dtype("int16").itemsize,
            storage="int16",
        )
        return Replan(
            "demote",
            demoted,
            f"collision energy {collision:.3g} < {demote_collision_floor:.3g}; "
            "demoting cold history to int16",
        )
    return Replan("hold", current, "no trigger fired")
