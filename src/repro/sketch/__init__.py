"""Sketch substrate: count sketch, count-min, baselines and top-k tracking."""

from repro.sketch.augmented import AugmentedSketch
from repro.sketch.base import ValueSketch
from repro.sketch.cold_filter import ColdFilterSketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.decay import DecayedSketch, decay_from_half_life
from repro.sketch.hierarchical import HierarchicalCountSketch
from repro.sketch.kernels import (
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.sketch.planner import CapacityPlan, plan
from repro.sketch.serialization import load_sketch, save_sketch
from repro.sketch.storage import DEFAULT_QUANTUM, CounterStore, resolve_storage
from repro.sketch.topk import TopKTracker, scan_top_keys

__all__ = [
    "AugmentedSketch",
    "CapacityPlan",
    "ColdFilterSketch",
    "CountMinSketch",
    "CountSketch",
    "CounterStore",
    "DEFAULT_QUANTUM",
    "DecayedSketch",
    "HierarchicalCountSketch",
    "TopKTracker",
    "ValueSketch",
    "available_backends",
    "decay_from_half_life",
    "load_sketch",
    "numba_available",
    "plan",
    "resolve_backend",
    "resolve_storage",
    "save_sketch",
    "scan_top_keys",
]
