"""Pluggable counter storage — the compact memory tier under every sketch.

The paper's budget unit is *counters*, but the binding constraint at
trillion scale is *bytes per counter*: a float64 table spends 8 bytes on
values whose useful precision is a few parts in ten thousand.
:class:`CounterStore` owns a sketch's flat counter array and lets the same
fused scatter/gather kernels run over four physical layouts:

``float64`` / ``float32``
    Plain floating counters — the pre-existing behaviour, bit-for-bit.
    The float64 path delegates straight to
    :func:`repro.sketch.base.scatter_add_flat`, so every equivalence proof
    in ``tests/test_fused_kernels.py`` still holds.

``int16`` / ``int32`` (+ ``quantum``)
    Fixed-point counters: a stored integer ``c`` represents the value
    ``c * quantum``.  Every insert batch is quantized once
    (``rint(value / quantum)``), summed per slot exactly, and applied in a
    single pass.  When any counter *would* leave the dtype's range the
    whole table widens first — ``int16 -> int32 -> float64`` — and only
    then applies the batch, so promotion is deterministic (a pure function
    of the update stream) and **exact**: after promotion the counters are
    bit-identical to a run that used the wider dtype from the start
    (``tests/test_storage.py`` fuzzes this at the saturation boundary).

Promotion keeps the quantized unit: the float64 rung still carries its
``quantum``, it just never saturates.  Per-slot sums are accumulated in
float64, which represents integers exactly up to ``2**53`` quanta — far
beyond the int32 rung where the check matters.

Two properties make the quantized tier drop into the existing system:

* **Merge-safe** — two stores with the same ``quantum`` merge exactly
  whatever their current widths (the narrower side's integers embed in the
  wider side's); the distributed reducer and the sliding-window pane merge
  go through :meth:`add_raw`.
* **Rescale-safe** — scaling a quantized store multiplies ``quantum``
  instead of the counters, so one-shot renormalisation folds (a snapshot
  export baking ``T/W`` in, a window normalisation) are *exact*: no
  integer truncation, ever.  Sustained exponential decay is different —
  fresh mass quantizes against an ever-shrinking effective unit, so
  :class:`repro.sketch.DecayedSketch` refuses quantized backings rather
  than silently widening to float64 (use ``float32`` under decay).

Pick a quantum with :func:`repro.sketch.planner.plan`, or rely on
:data:`DEFAULT_QUANTUM` (sized for correlation-mode streams, |value| <= 1).
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import reject_readonly_counters, scatter_add_flat

__all__ = [
    "CounterStore",
    "DEFAULT_QUANTUM",
    "STORAGE_DTYPES",
    "resolve_storage",
]

#: Default fixed-point step for quantized storage when the caller gives
#: none: ``2**-14`` (~6.1e-5).  An int16 counter then spans ±2.0 — enough
#: headroom for correlation-mode mean estimates (|value| <= 1) to finish
#: without promotion, with quantization noise two orders of magnitude
#: below the paper's signal strengths.  Power of two, so products with
#: power-of-two decay factors stay exact.
DEFAULT_QUANTUM = 2.0**-14

#: Declared storage dtypes a sketch can be built with.
STORAGE_DTYPES = ("float64", "float32", "int16", "int32")

#: Widening ladder for quantized storage.  float64 is the terminal rung:
#: it never saturates and still represents every integer the int rungs
#: could hold exactly.
_LADDER = (np.dtype(np.int16), np.dtype(np.int32), np.dtype(np.float64))


def resolve_storage(dtype) -> np.dtype:
    """Normalise a storage knob (name or numpy dtype) to a ``np.dtype``."""
    resolved = np.dtype(dtype)
    if resolved.name not in STORAGE_DTYPES:
        raise ValueError(
            f"unsupported counter storage {resolved.name!r}; "
            f"choose one of {STORAGE_DTYPES}"
        )
    return resolved


def _next_rung(dtype: np.dtype) -> np.dtype:
    index = _LADDER.index(dtype)
    return _LADDER[index + 1]


class CounterStore:
    """Owns a sketch's ``(K, R)`` counter table and its flat view.

    Parameters
    ----------
    num_tables, num_buckets:
        Table shape; the flat view addresses counter ``(e, b)`` as
        ``raw[e * num_buckets + b]`` (the fused-kernel contract).
    dtype:
        Declared storage (:data:`STORAGE_DTYPES`).  Integer dtypes may
        widen later; :attr:`declared_dtype` keeps the original request.
    quantum:
        Fixed-point step for integer dtypes (default
        :data:`DEFAULT_QUANTUM`).  Also accepted with ``float64`` — the
        promotion terminal — so serialized promoted stores round-trip;
        rejected for ``float32`` (not on the ladder).
    """

    def __init__(
        self, num_tables: int, num_buckets: int, dtype=np.float64, quantum=None
    ):
        dtype = resolve_storage(dtype)
        if quantum is not None:
            quantum = float(quantum)
            if not quantum > 0.0:
                raise ValueError(f"quantum must be > 0, got {quantum}")
            if dtype == np.dtype(np.float32):
                raise ValueError(
                    "quantized storage widens along int16 -> int32 -> float64; "
                    "float32 cannot carry a quantum"
                )
        elif dtype.kind == "i":
            quantum = DEFAULT_QUANTUM
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.declared_dtype = dtype
        self.quantum = quantum
        self.matrix = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)
        self.raw = self.matrix.reshape(-1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """The *current* storage dtype (may be wider than declared)."""
        return self.raw.dtype

    @property
    def quantized(self) -> bool:
        return self.quantum is not None

    @property
    def size(self) -> int:
        return self.raw.size

    @property
    def nbytes(self) -> int:
        """Resident counter bytes — the memory-tier accounting unit."""
        return self.raw.nbytes

    @property
    def bytes_per_counter(self) -> float:
        return self.raw.dtype.itemsize

    @property
    def saturation(self) -> float:
        """Largest |counter| as a fraction of the current dtype's range.

        The autoscaler's headroom signal: a quantized store approaching
        1.0 is about to widen (exact, but it silently doubles residency —
        re-planning to more buckets keeps the compact dtype instead).
        Float stores report 0.0 — they do not saturate.
        """
        if self.raw.dtype.kind != "i" or self.raw.size == 0:
            return 0.0
        peak = float(
            max(-int(self.raw.min()), int(self.raw.max()))
        )
        return peak / float(np.iinfo(self.raw.dtype).max)

    @property
    def frozen(self) -> bool:
        return not self.raw.flags.writeable

    def freeze(self) -> "CounterStore":
        """Make both views read-only; every mutator refuses afterwards."""
        self.matrix.flags.writeable = False
        self.raw.flags.writeable = False
        return self

    def _guard_writable(self) -> None:
        reject_readonly_counters(self.raw)

    # ------------------------------------------------------------------
    # Hot paths
    # ------------------------------------------------------------------
    def scatter_add(
        self, flat_indices: np.ndarray, weights: np.ndarray, *, use_bincount: bool
    ) -> None:
        """Accumulate ``weights`` (value units) at ``flat_indices``.

        The float path is byte-for-byte the pre-storage-tier behaviour
        (same strategy crossover, same rounding order).  The quantized
        path aggregates each slot's integer delta once per batch, so
        intra-batch duplicate order can never matter, then widens if any
        resulting counter would leave the current dtype's range.
        """
        if self.quantum is None:
            scatter_add_flat(self.raw, flat_indices, weights, use_bincount=use_bincount)
            return
        self._guard_writable()
        q = np.rint(np.asarray(weights, dtype=np.float64) / self.quantum)
        if use_bincount:
            delta = np.bincount(flat_indices, weights=q, minlength=self.raw.size)
            touched = np.nonzero(delta)[0]
            delta = delta[touched]
        else:
            # Small batches: aggregate over the touched slots only, so the
            # cost scales with the batch, not the table (the same crossover
            # the float tier's strategy flag encodes).
            touched, inverse = np.unique(flat_indices, return_inverse=True)
            delta = np.bincount(inverse, weights=q)
            nonzero = delta != 0.0
            touched, delta = touched[nonzero], delta[nonzero]
        self._apply_touched_delta(touched, delta)

    def gather(self, flat_indices: np.ndarray) -> np.ndarray:
        """Counter values (float64, value units) at ``flat_indices``."""
        gathered = self.raw[flat_indices]
        if gathered.dtype != np.float64:
            gathered = gathered.astype(np.float64)
        if self.quantum is not None and self.quantum != 1.0:
            gathered *= self.quantum
        return gathered

    def _apply_integral_delta(self, delta: np.ndarray) -> None:
        """Add a full-size integral (float64) delta, widening first if needed."""
        touched = np.nonzero(delta)[0]
        if touched.size == 0:
            return
        self._apply_touched_delta(touched, delta[touched])

    def _apply_touched_delta(self, touched: np.ndarray, delta: np.ndarray) -> None:
        """Add integral (float64) ``delta`` at unique slots ``touched``.

        The would-be counters are checked against the current integer
        rung's exact bounds *before* any write: a counter may sit exactly
        on ``iinfo.max``/``iinfo.min`` without promoting, and the first
        quantum beyond widens the whole table.  Because the check happens
        pre-write, the post-promotion counters are identical to an
        all-wide run — saturation never clips anything.

        The in-range *results* are written back directly rather than
        casting and adding the delta: a delta can exceed the rung's range
        even when the resulting counter fits (sign-cancelling updates),
        and a float64 -> int cast of such a delta saturates.
        """
        if touched.size == 0:
            # Every weight in the batch quantized to zero — nothing to add
            # (and the empty min/max reduction below has no identity).
            return
        while self.raw.dtype.kind == "i":
            info = np.iinfo(self.raw.dtype)
            candidate = self.raw[touched].astype(np.float64)
            candidate += delta
            if candidate.min() >= info.min and candidate.max() <= info.max:
                self.raw[touched] = candidate.astype(self.raw.dtype)
                return
            self._promote(_next_rung(self.raw.dtype))
        self.raw[touched] += delta

    def _promote(self, dtype: np.dtype) -> None:
        self.matrix = self.matrix.astype(dtype)
        self.raw = self.matrix.reshape(-1)

    # ------------------------------------------------------------------
    # Whole-table operations
    # ------------------------------------------------------------------
    def zero(self) -> None:
        self._guard_writable()
        self.raw[:] = 0

    def scale(self, factor: float) -> None:
        """Multiply every counter *value* by ``factor``.

        Quantized stores fold the factor into ``quantum`` — the counters
        are untouched, so a one-shot renormalisation is exact (no integer
        truncation).  Note later inserts quantize against the *new* unit,
        which is why sustained per-tick decay is rejected upstream
        (:class:`~repro.sketch.DecayedSketch`) rather than routed here.
        Float stores scale in place as before.
        """
        self._guard_writable()
        if self.quantum is not None:
            self.quantum *= float(factor)
        else:
            self.raw *= float(factor)

    def check_mergeable(self, other: "CounterStore", owner: str) -> None:
        """Raise ``ValueError`` unless ``other`` can sum into this store."""
        if (self.quantum is None) != (other.quantum is None):
            raise ValueError(
                f"{owner} sketches are mergeable only within one storage "
                "tier; cannot merge quantized and float counter tables"
            )
        if self.quantum is not None:
            if self.quantum != other.quantum:
                raise ValueError(
                    f"{owner} sketches are mergeable only with identical "
                    f"quantum; {self.quantum!r} != {other.quantum!r}"
                )
        elif self.raw.dtype != other.raw.dtype:
            raise ValueError(
                f"{owner} sketches are mergeable only with identical "
                f"counter dtype; {self.raw.dtype} != {other.raw.dtype}"
            )

    def merge_from(self, other: "CounterStore") -> None:
        """Sum another (pre-checked) store's counters into this one."""
        self.add_raw(other.raw)

    def add_raw(self, table: np.ndarray) -> None:
        """Sum a raw counter array (same unit/quantum) into this store.

        Quantized path: the incoming integers join the exact widening
        machinery, so merging an int16 shard into an int16 store can
        promote — exactly as ingesting the same mass would have.  Float
        path: plain in-place addition, bit-identical to the historical
        ``table += other.table``.
        """
        self._guard_writable()
        flat = np.asarray(table).reshape(-1)
        if flat.size != self.raw.size:
            raise ValueError(
                f"counter table size mismatch: {flat.size} != {self.raw.size}"
            )
        if self.quantum is None:
            self.raw += flat
        else:
            self._apply_integral_delta(flat.astype(np.float64))

    def load_raw(self, table: np.ndarray) -> None:
        """Replace the counters with a raw array (adopting its width).

        Used when restoring persisted state (e.g. a sliding-window pane)
        into a freshly built store: the persisted table may already have
        widened past the declared dtype, and a silent down-cast would
        corrupt it.  The store promotes to the incoming dtype when it is
        wider; a *narrower* incoming table embeds exactly.
        """
        self._guard_writable()
        incoming = np.asarray(table)
        if incoming.ndim == 1:
            incoming = incoming.reshape(self.matrix.shape)
        if incoming.shape != self.matrix.shape:
            raise ValueError(
                f"counter table shape mismatch: {incoming.shape} != {self.matrix.shape}"
            )
        if incoming.dtype != self.raw.dtype:
            if self.quantum is None:
                raise ValueError(
                    "cannot load a counter table with a different dtype into "
                    f"float storage; {incoming.dtype} != {self.raw.dtype}"
                )
            if _LADDER.index(incoming.dtype) > _LADDER.index(self.raw.dtype):
                self._promote(incoming.dtype)
        self.matrix[:] = incoming

    def attach(self, matrix: np.ndarray) -> None:
        """Adopt ``matrix`` as the counter table **without copying**.

        The zero-copy snapshot path: ``matrix`` is typically a read-only
        ``np.memmap`` of an uncompressed ``.npz`` member, so the store is
        born frozen (queries gather, writes hit the read-only guard).
        """
        matrix = np.asarray(matrix)
        if matrix.shape != (self.num_tables, self.num_buckets):
            raise ValueError(
                f"cannot attach table of shape {matrix.shape}; "
                f"expected {(self.num_tables, self.num_buckets)}"
            )
        resolved = matrix.dtype
        if resolved not in _LADDER and resolved.name not in STORAGE_DTYPES:
            raise ValueError(f"unsupported counter dtype {resolved}")
        if not matrix.flags.c_contiguous:
            raise ValueError("attached counter tables must be C-contiguous")
        self.matrix = matrix
        self.raw = matrix.reshape(-1)

    def copy(self) -> "CounterStore":
        clone = CounterStore(
            self.num_tables,
            self.num_buckets,
            dtype=self.declared_dtype,
            quantum=self.quantum,
        )
        if clone.raw.dtype != self.raw.dtype:
            clone._promote(self.raw.dtype)
        clone.matrix[:] = self.matrix
        return clone

    # ------------------------------------------------------------------
    # Pickling / deepcopy: raw is a view of matrix — serialising both as
    # independent arrays would silently decouple them.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["raw"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.raw = self.matrix.reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        quantum = "" if self.quantum is None else f", quantum={self.quantum:g}"
        return (
            f"CounterStore({self.num_tables}x{self.num_buckets}, "
            f"{self.raw.dtype.name}{quantum})"
        )
