"""Kernel backend selection for the fused sketch hot paths.

The scatter/gather/median loop is the entire ingest and query cost of the
system, so it is worth compiling.  This package holds the two
implementations of the hot primitives and the knob that picks between
them:

* :mod:`repro.sketch.kernels.numpy_ref` — the executable specification.
  Standalone numpy implementations of the fused primitives (combined
  multiply-shift bucket+sign hashing, flat-table scatter-insert,
  single-gather + min/max-network median query, combined
  ``insert_and_query``) with exactly the layout and summation order the
  sketches use inline.  Tests pin the inline paths against this module.
* :mod:`repro.sketch.kernels.numba_jit` — the same primitives compiled
  with numba.  Identical ``(K*R,)`` flat layout, identical uint64 hash
  arithmetic, identical accumulation order, so results are bit-identical
  to the numpy path (the conformance suite enforces this per backend).

Backend selection
-----------------
``resolve_backend(requested)`` maps a request to a concrete backend:

* an explicit ``backend="numpy"|"numba"|"auto"`` argument wins;
* otherwise the ``REPRO_KERNEL_BACKEND`` environment variable applies —
  CI forces either path through it without touching call sites;
* otherwise ``"auto"``: numba when importable, else numpy.

Requesting ``"numba"`` when numba is not importable **falls back to
numpy** instead of failing, and emits a one-time structured
``kernels.fallback`` warning through :mod:`repro.obs` — never
silent-crash, never silent-slow.  ``"auto"`` falls back silently (that
is its contract).

The backend is **runtime configuration, not state**: it never enters
:func:`repro.sketch.serialization.sketch_to_arrays`, so snapshots are
byte-identical across backends and a file written under one backend
loads under the other.
"""

from __future__ import annotations

import os

from repro.obs.log import get_logger

__all__ = [
    "VALID_BACKENDS",
    "ENV_VAR",
    "resolve_backend",
    "available_backends",
    "numba_available",
    "numba_version",
    "numba_kernels",
    "reset_fallback_warning",
]

#: Accepted values for the ``backend`` knob and the env override.
VALID_BACKENDS = ("numpy", "numba", "auto")

#: Environment override consulted when no explicit backend is passed.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_log = get_logger(__name__)

#: Lazy one-shot import state for the compiled module (tests monkeypatch
#: these two to simulate numba presence/absence deterministically).
_jit_checked = False
_jit_module = None

#: One-time guard for the ``kernels.fallback`` warning event.
_fallback_warned = False


def numba_kernels():
    """The compiled kernel module, or ``None`` when numba is unavailable.

    The import is attempted once per process; any failure (numba absent,
    broken install) is treated as "unavailable" — callers fall back to
    the numpy path rather than surfacing an import error from deep
    inside an insert.
    """
    global _jit_checked, _jit_module
    if not _jit_checked:
        _jit_checked = True
        try:
            from repro.sketch.kernels import numba_jit

            _jit_module = numba_jit
        except Exception:
            _jit_module = None
    return _jit_module


def numba_available() -> bool:
    """Whether the compiled backend can actually be used."""
    return numba_kernels() is not None


def numba_version() -> str | None:
    """The importable numba version string, or ``None``."""
    module = numba_kernels()
    return None if module is None else module.NUMBA_VERSION


def available_backends() -> tuple[str, ...]:
    """Concrete backends usable in this process, numpy first."""
    if numba_available():
        return ("numpy", "numba")
    return ("numpy",)


def reset_fallback_warning() -> None:
    """Re-arm the one-time fallback warning (test hook)."""
    global _fallback_warned
    _fallback_warned = False


def _warn_fallback_once(requested_via: str) -> None:
    global _fallback_warned
    if _fallback_warned:
        return
    _fallback_warned = True
    _log.warning(
        "kernels.fallback",
        requested="numba",
        via=requested_via,
        using="numpy",
        reason="numba is not importable",
        hint="pip install numba (the 'fast' extra) to enable the JIT backend",
    )


def _validated(value: str, source: str) -> str:
    value = value.strip().lower()
    if value not in VALID_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {value!r} (from {source}); "
            f"choose from {VALID_BACKENDS}"
        )
    return value


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a backend request to a concrete ``"numpy"`` or ``"numba"``.

    Precedence: an explicit ``requested`` string wins; with
    ``requested=None`` the :data:`ENV_VAR` environment variable applies;
    absent both, ``"auto"``.  ``"auto"`` resolves to numba when
    importable and numpy otherwise (silently).  An explicit or
    env-forced ``"numba"`` without numba installed resolves to numpy
    and fires the one-time ``kernels.fallback`` warning.
    """
    via = "backend argument"
    if requested is None:
        env = os.environ.get(ENV_VAR)
        if env:
            requested = _validated(env, f"${ENV_VAR}")
            via = f"${ENV_VAR}"
        else:
            requested = "auto"
            via = "default"
    else:
        requested = _validated(requested, "backend argument")
    if requested == "auto":
        return "numba" if numba_available() else "numpy"
    if requested == "numba" and not numba_available():
        _warn_fallback_once(via)
        return "numpy"
    return requested
