"""Numpy reference implementations of the fused sketch kernels.

This module is the **executable specification** shared by the inline
sketch hot paths and the compiled backend
(:mod:`repro.sketch.kernels.numba_jit`): every function here states, in
plain vectorised numpy, exactly what a kernel must compute — the layout,
the hash arithmetic and the floating-point accumulation order.  The
equivalence tests pin both the inline paths and the compiled kernels
against these functions, so "bit-identical across backends" is enforced
rather than hoped for.

The contract
------------
* **Layout.** Counters live in one flat ``(K*R,)`` float64 array;
  counter ``(e, b)`` sits at ``flat[e*R + b]`` (``offsets[e] = e*R``).
* **Hashing.** Combined multiply-shift: for table ``e`` and key ``x``,
  ``w = (x * a[e] + b[e]) mod 2^64 >> 32``; the bucket is ``w & mask``
  (power-of-two ``R``) or ``w % R``.  Rows ``K..2K-1`` of ``a``/``b``
  are the sign hashes; the sign bit is bit 0 of the same expression
  (``0 => +1``, ``1 => -1``).  All arithmetic is uint64 with wrap-around,
  matching numpy and C exactly.
* **Summation order.** The bincount strategy accumulates every signed
  update into a fresh float64 accumulator in table-major input order
  (all of table 0's hits in batch order, then table 1's, ...), then adds
  the accumulator to the table elementwise; the small-batch strategy
  applies each update directly to the table in the same order.  Both
  mirror :func:`repro.sketch.base.scatter_add_flat` on the raveled
  ``(K, n)`` index matrix, so either backend reproduces the other's
  floats bit-for-bit.
* **Median.** ``K in {1, 3, 5}`` uses the min/max selection network of
  :func:`repro.sketch.count_sketch._median_axis0`; ``np.minimum`` /
  ``np.maximum`` semantics (NaN propagates, ties keep the first operand)
  are part of the contract.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bucket_sign",
    "cs_insert",
    "cs_query",
    "cs_insert_and_query",
    "cm_insert",
    "cm_query",
    "median_network",
]

_U1 = np.uint64(1)
_U32 = np.uint64(32)


def bucket_sign(keys, a, b, num_buckets, mask, use_mask):
    """``(buckets, sign_bits)`` for all tables, each ``(K, n)`` uint64.

    ``a`` and ``b`` are the flattened ``(2K,)`` combined multiply-shift
    parameters (bucket rows first, sign rows after); ``keys`` is the
    uint64 view of the validated int64 key batch.
    """
    w = keys[None, :] * a[:, None]
    w += b[:, None]
    w >>= _U32
    num_tables = a.shape[0] // 2
    buckets, bits = w[:num_tables], w[num_tables:]
    if use_mask:
        buckets &= np.uint64(mask)
    else:
        buckets %= np.uint64(num_buckets)
    bits &= _U1
    return buckets, bits


def _flat_indices(buckets, offsets):
    return (buckets + offsets[:, None]).view(np.int64)


def _signed(bits, values):
    return np.where(bits != 0, -values, values)


def cs_insert(
    flat, keys, values, a, b, offsets, num_buckets, mask, use_mask, use_bincount
):
    """Scatter one signed batch into the flat count-sketch table."""
    buckets, bits = bucket_sign(keys, a, b, num_buckets, mask, use_mask)
    indices = _flat_indices(buckets, offsets)
    signed = _signed(bits, values)
    if use_bincount:
        acc = np.bincount(
            indices.ravel(), weights=signed.ravel(), minlength=flat.size
        )
        flat += acc.astype(flat.dtype, copy=False)
    else:
        np.add.at(flat, indices.ravel(), signed.ravel())


def cs_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out):
    """Median-of-tables estimates for a key batch (``K in {1, 3, 5}``)."""
    buckets, bits = bucket_sign(keys, a, b, num_buckets, mask, use_mask)
    gathered = flat[_flat_indices(buckets, offsets)]
    out[:] = median_network(_signed(bits, gathered))


def cs_insert_and_query(
    flat,
    keys,
    values,
    a,
    b,
    offsets,
    num_buckets,
    mask,
    use_mask,
    use_bincount,
    out,
):
    """Insert a batch, then estimate the same keys post-insert."""
    cs_insert(
        flat, keys, values, a, b, offsets, num_buckets, mask, use_mask, use_bincount
    )
    cs_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out)


def _cm_buckets(keys, a, b, num_buckets, mask, use_mask):
    w = keys[None, :] * a[:, None]
    w += b[:, None]
    w >>= _U32
    if use_mask:
        w &= np.uint64(mask)
    else:
        w %= np.uint64(num_buckets)
    return w


def cm_insert(flat, keys, values, a, b, offsets, num_buckets, mask, use_mask):
    """Unsigned scatter into the flat count-min table (bincount order).

    Count-min's non-conservative insert always takes the bincount
    strategy (its batches broadcast one value row across ``K`` tables);
    ``a``/``b`` carry only the ``(K,)`` bucket-hash rows — no signs.
    """
    buckets = _cm_buckets(keys, a, b, num_buckets, mask, use_mask)
    indices = _flat_indices(buckets, offsets)
    weights = np.broadcast_to(values, indices.shape)
    acc = np.bincount(
        indices.ravel(), weights=weights.ravel(), minlength=flat.size
    )
    flat += acc.astype(flat.dtype, copy=False)


def cm_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out):
    """Min-of-tables estimates (reduction in ascending table order)."""
    buckets = _cm_buckets(keys, a, b, num_buckets, mask, use_mask)
    gathered = flat[_flat_indices(buckets, offsets)]
    out[:] = np.min(gathered, axis=0)


def median_network(est: np.ndarray) -> np.ndarray:
    """Column medians of ``(K, n)`` for ``K in {1, 3, 5}`` via min/max nets.

    Mirrors :func:`repro.sketch.count_sketch._median_axis0` exactly
    (selection, not averaging — bit-identical to ``np.median`` for odd
    ``K``); the kernel backends only claim eligibility for these widths.
    """
    k = est.shape[0]
    if k == 1:
        return est[0]
    if k == 3:
        e0, e1, e2 = est
        return np.maximum(np.minimum(e0, e1), np.minimum(np.maximum(e0, e1), e2))
    if k == 5:
        e0, e1, e2, e3, e4 = est
        lo01, hi01 = np.minimum(e0, e1), np.maximum(e0, e1)
        lo23, hi23 = np.minimum(e2, e3), np.maximum(e2, e3)
        lo = np.maximum(lo01, lo23)
        hi = np.minimum(hi01, hi23)
        m1, m2 = np.minimum(lo, hi), np.maximum(lo, hi)
        return np.minimum(np.maximum(e4, m1), m2)
    raise ValueError(f"median network supports K in (1, 3, 5), got {k}")
