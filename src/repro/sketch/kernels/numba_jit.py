"""Numba-compiled fused sketch kernels.

Importing this module requires numba; import it through
:func:`repro.sketch.kernels.numba_kernels`, which treats any import
failure as "backend unavailable" and lets callers fall back to numpy.

Every kernel implements the contract documented in
:mod:`repro.sketch.kernels.numpy_ref` with **bit-identical** results:

* the same flat ``(K*R,)`` float64 layout (``flat[e*R + b]``);
* the same uint64 multiply-shift arithmetic (wrap-around multiply,
  ``>> 32``, mask or modulo) — all operands stay uint64, which numba
  compiles to the exact C semantics numpy uses;
* the same summation order — the bincount strategy fills a fresh
  float64 accumulator in table-major input order and adds it to the
  table elementwise, the small-batch strategy adds straight to the
  table in the same order;
* the same min/max median network, with scalar ``fmin``/``fmax``
  helpers that replicate ``np.minimum``/``np.maximum`` (NaN propagates,
  ties keep the first operand).

No ``fastmath`` (it would license reassociation and break bit-identity)
and no ``parallel`` (ordered accumulation is part of the contract);
``cache=True`` persists the compiled machine code next to the package so
repeat processes skip JIT warm-up.
"""

from __future__ import annotations

import numba
import numpy as np
from numba import njit

NUMBA_VERSION = numba.__version__

_U1 = np.uint64(1)
_U32 = np.uint64(32)


@njit(cache=True)
def _fmin(a, b):
    # np.minimum semantics: NaN propagates, ties return the first operand.
    if a != a:
        return a
    if b != b:
        return b
    return a if a <= b else b


@njit(cache=True)
def _fmax(a, b):
    if a != a:
        return a
    if b != b:
        return b
    return a if a >= b else b


@njit(cache=True)
def _bucket_of(w, num_buckets, mask, use_mask):
    if use_mask:
        return w & mask
    return w % num_buckets


@njit(cache=True)
def cs_insert(
    flat, keys, values, a, b, offsets, num_buckets, mask, use_mask, use_bincount
):
    num_tables = offsets.shape[0]
    n = keys.shape[0]
    if use_bincount:
        acc = np.zeros(flat.shape[0], dtype=np.float64)
        for e in range(num_tables):
            a_bucket = a[e]
            b_bucket = b[e]
            a_sign = a[num_tables + e]
            b_sign = b[num_tables + e]
            offset = offsets[e]
            for i in range(n):
                key = keys[i]
                w = (key * a_bucket + b_bucket) >> _U32
                bucket = _bucket_of(w, num_buckets, mask, use_mask)
                sign = ((key * a_sign + b_sign) >> _U32) & _U1
                value = values[i]
                if sign == _U1:
                    value = -value
                acc[offset + bucket] += value
        for j in range(flat.shape[0]):
            flat[j] += acc[j]
    else:
        for e in range(num_tables):
            a_bucket = a[e]
            b_bucket = b[e]
            a_sign = a[num_tables + e]
            b_sign = b[num_tables + e]
            offset = offsets[e]
            for i in range(n):
                key = keys[i]
                w = (key * a_bucket + b_bucket) >> _U32
                bucket = _bucket_of(w, num_buckets, mask, use_mask)
                sign = ((key * a_sign + b_sign) >> _U32) & _U1
                value = values[i]
                if sign == _U1:
                    value = -value
                flat[offset + bucket] += value


@njit(cache=True)
def _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, e):
    num_tables = offsets.shape[0]
    w = (key * a[e] + b[e]) >> _U32
    bucket = _bucket_of(w, num_buckets, mask, use_mask)
    sign = ((key * a[num_tables + e] + b[num_tables + e]) >> _U32) & _U1
    value = flat[offsets[e] + bucket]
    if sign == _U1:
        return -value
    return value


@njit(cache=True)
def cs_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out):
    num_tables = offsets.shape[0]
    n = keys.shape[0]
    if num_tables == 1:
        for i in range(n):
            out[i] = _estimate(
                flat, keys[i], a, b, offsets, num_buckets, mask, use_mask, 0
            )
    elif num_tables == 3:
        for i in range(n):
            key = keys[i]
            e0 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 0)
            e1 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 1)
            e2 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 2)
            out[i] = _fmax(_fmin(e0, e1), _fmin(_fmax(e0, e1), e2))
    else:
        for i in range(n):
            key = keys[i]
            e0 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 0)
            e1 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 1)
            e2 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 2)
            e3 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 3)
            e4 = _estimate(flat, key, a, b, offsets, num_buckets, mask, use_mask, 4)
            lo01 = _fmin(e0, e1)
            hi01 = _fmax(e0, e1)
            lo23 = _fmin(e2, e3)
            hi23 = _fmax(e2, e3)
            lo = _fmax(lo01, lo23)
            hi = _fmin(hi01, hi23)
            m1 = _fmin(lo, hi)
            m2 = _fmax(lo, hi)
            out[i] = _fmin(_fmax(e4, m1), m2)


@njit(cache=True)
def cs_insert_and_query(
    flat,
    keys,
    values,
    a,
    b,
    offsets,
    num_buckets,
    mask,
    use_mask,
    use_bincount,
    out,
):
    cs_insert(
        flat, keys, values, a, b, offsets, num_buckets, mask, use_mask, use_bincount
    )
    cs_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out)


@njit(cache=True)
def cm_insert(flat, keys, values, a, b, offsets, num_buckets, mask, use_mask):
    num_tables = offsets.shape[0]
    n = keys.shape[0]
    acc = np.zeros(flat.shape[0], dtype=np.float64)
    for e in range(num_tables):
        a_bucket = a[e]
        b_bucket = b[e]
        offset = offsets[e]
        for i in range(n):
            w = (keys[i] * a_bucket + b_bucket) >> _U32
            bucket = _bucket_of(w, num_buckets, mask, use_mask)
            acc[offset + bucket] += values[i]
    for j in range(flat.shape[0]):
        flat[j] += acc[j]


@njit(cache=True)
def cm_query(flat, keys, a, b, offsets, num_buckets, mask, use_mask, out):
    num_tables = offsets.shape[0]
    n = keys.shape[0]
    for i in range(n):
        key = keys[i]
        w = (key * a[0] + b[0]) >> _U32
        best = flat[offsets[0] + _bucket_of(w, num_buckets, mask, use_mask)]
        for e in range(1, num_tables):
            w = (key * a[e] + b[e]) >> _U32
            best = _fmin(
                best, flat[offsets[e] + _bucket_of(w, num_buckets, mask, use_mask)]
            )
        out[i] = best
