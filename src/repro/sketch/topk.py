"""Bounded candidate tracking for top-k retrieval at trillion scale.

At small dimension the harness can scan every pair estimate and sort — the
protocol of section 8.3.  At URL/DNA scale (``p`` up to ``1.4e14``) a full
scan is impossible, so the tracker keeps a bounded pool of the keys that
looked large while streaming (every key that survived ASCS sampling, or every
inserted key for vanilla CS) together with their most recent estimates.  At
the end the pool is *re-queried* against the final sketch so stale estimates
cannot leak into the ranking.

The pool is a dict plus periodic pruning: when the pool exceeds
``capacity * slack`` it is cut back to the ``capacity`` entries with the
largest current estimates.  The dict gives O(1) updates; pruning is O(pool)
amortised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TopKTracker"]


class TopKTracker:
    """Track candidate heavy keys and their running estimates.

    Parameters
    ----------
    capacity:
        Number of candidates retained after each prune.  Retrieval quality
        only needs ``capacity >> k`` (default harnesses use ``10x``).
    slack:
        Pool growth factor that triggers pruning.
    two_sided:
        Rank by ``|estimate|`` when true, by signed value otherwise —
        matching the sidedness of the sampling rule that feeds the tracker.
    """

    def __init__(self, capacity: int, *, slack: float = 2.0, two_sided: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slack <= 1.0:
            raise ValueError(f"slack must be > 1, got {slack}")
        self.capacity = int(capacity)
        self.slack = float(slack)
        self.two_sided = bool(two_sided)
        self._pool: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._pool)

    def _rank_value(self, estimates: np.ndarray) -> np.ndarray:
        return np.abs(estimates) if self.two_sided else estimates

    def offer(self, keys, estimates) -> None:
        """Record (or refresh) candidates with their current estimates."""
        keys = np.asarray(keys, dtype=np.int64)
        estimates = np.asarray(estimates, dtype=np.float64)
        if keys.shape != estimates.shape:
            raise ValueError("keys and estimates must align")
        pool = self._pool
        for key, est in zip(keys.tolist(), estimates.tolist()):
            pool[key] = est
        if len(pool) > self.capacity * self.slack:
            self._prune()

    def _prune(self) -> None:
        keys = np.fromiter(self._pool.keys(), dtype=np.int64, count=len(self._pool))
        ests = np.fromiter(self._pool.values(), dtype=np.float64, count=len(self._pool))
        order = np.argsort(-self._rank_value(ests), kind="stable")[: self.capacity]
        self._pool = dict(zip(keys[order].tolist(), ests[order].tolist()))

    def candidates(self) -> np.ndarray:
        """Current candidate keys (unordered)."""
        return np.fromiter(self._pool.keys(), dtype=np.int64, count=len(self._pool))

    def top_k(self, k: int, sketch=None) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` candidates with the largest estimates.

        Parameters
        ----------
        k:
            Number of keys to return (fewer if the pool is smaller).
        sketch:
            Optional sketch with a ``query`` method; when given, candidates
            are re-queried so the ranking reflects the *final* sketch state
            rather than the estimates observed mid-stream.

        Returns
        -------
        ``(keys, estimates)`` sorted by decreasing (two-sided: absolute)
        estimate.
        """
        if not self._pool:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = self.candidates()
        if sketch is not None:
            ests = np.asarray(sketch.query(keys), dtype=np.float64)
        else:
            ests = np.array([self._pool[key] for key in keys.tolist()])
        order = np.argsort(-self._rank_value(ests), kind="stable")[: int(k)]
        return keys[order], ests[order]

    def reset(self) -> None:
        self._pool.clear()
