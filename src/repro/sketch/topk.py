"""Bounded candidate tracking for top-k retrieval at trillion scale.

At small dimension the harness can scan every pair estimate and sort — the
protocol of section 8.3.  At URL/DNA scale (``p`` up to ``1.4e14``) a full
scan is impossible, so the tracker keeps a bounded pool of the keys that
looked large while streaming (every key that survived ASCS sampling, or every
inserted key for vanilla CS) together with their most recent estimates.  At
the end the pool is *re-queried* against the final sketch so stale estimates
cannot leak into the ranking.

The pool is array-backed: ``offer`` appends whole batches into preallocated
key/estimate buffers with two slice assignments (no per-key Python loop).
Duplicates are tolerated in the buffer and resolved lazily by a *compaction*
pass — ``np.unique`` keyed dedup that keeps each key's **latest** estimate
while preserving first-insertion order, which reproduces dict-update
semantics exactly.  When the compacted pool exceeds ``capacity * slack`` it
is cut back to the ``capacity`` entries with the largest current estimates.
Amortised cost is O(batch) numpy work per offer, with no Python-level
iteration anywhere.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["TopKTracker", "scan_top_keys"]


def scan_top_keys(
    query_fn: Callable[[np.ndarray], np.ndarray],
    num_keys: int,
    k: int,
    *,
    chunk: int = 1 << 20,
    rank_fn: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` keys over ``[0, num_keys)`` by chunked scan.

    The section-8.3 retrieval protocol for pair spaces small enough to
    enumerate, shared by the streaming pipeline and the serving snapshot
    builder.  Fixed-size running top-k buffer: the current best ``k``
    entries live in the buffer prefix and each chunk of keys is queried
    into the tail, so no per-chunk concatenation or reallocation happens.

    Parameters
    ----------
    query_fn:
        Batched key -> estimate function (e.g. ``sketch.query``).
    num_keys:
        Size of the scanned key range.
    k:
        Number of keys to return (clamped to ``num_keys``).
    chunk:
        Keys queried per scan step.
    rank_fn:
        Optional ranking transform (two-sided retrieval passes ``np.abs``);
        ``None`` ranks by the signed estimate.

    Returns
    -------
    ``(keys, estimates)`` sorted by decreasing rank (stable ties).
    """
    num_keys = int(num_keys)
    k = min(int(k), num_keys)
    if k < 1:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    rank = (lambda est: est) if rank_fn is None else rank_fn
    chunk = max(1, min(int(chunk), num_keys))
    buf_keys = np.empty(k + chunk, dtype=np.int64)
    buf_est = np.empty(buf_keys.size, dtype=np.float64)
    n_best = 0
    for start in range(0, num_keys, chunk):
        stop = min(start + chunk, num_keys)
        m = stop - start
        buf_keys[n_best : n_best + m] = np.arange(start, stop, dtype=np.int64)
        buf_est[n_best : n_best + m] = query_fn(buf_keys[n_best : n_best + m])
        total = n_best + m
        if total > k:
            top = np.argpartition(-rank(buf_est[:total]), k - 1)[:k]
            buf_keys[:k] = buf_keys[top]
            buf_est[:k] = buf_est[top]
            n_best = k
        else:
            n_best = total
    order = np.argsort(-rank(buf_est[:n_best]), kind="stable")
    return buf_keys[order], buf_est[order]


class TopKTracker:
    """Track candidate heavy keys and their running estimates.

    Parameters
    ----------
    capacity:
        Number of candidates retained after each prune.  Retrieval quality
        only needs ``capacity >> k`` (default harnesses use ``10x``).
    slack:
        Pool growth factor that triggers pruning.
    two_sided:
        Rank by ``|estimate|`` when true, by signed value otherwise —
        matching the sidedness of the sampling rule that feeds the tracker.
    """

    def __init__(self, capacity: int, *, slack: float = 2.0, two_sided: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slack <= 1.0:
            raise ValueError(f"slack must be > 1, got {slack}")
        self.capacity = int(capacity)
        self.slack = float(slack)
        self.two_sided = bool(two_sided)
        size = max(64, int(self.capacity * self.slack) + 1)
        self._keys = np.empty(size, dtype=np.int64)
        self._ests = np.empty(size, dtype=np.float64)
        self._size = 0  # occupied prefix of the buffers
        self._has_dups = False  # whether entries past the last compaction exist

    def __len__(self) -> int:
        self._compact()
        return self._size

    def _rank_value(self, estimates: np.ndarray) -> np.ndarray:
        return np.abs(estimates) if self.two_sided else estimates

    # ------------------------------------------------------------------
    # Buffer maintenance
    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        size = len(self._keys)
        while size < needed:
            size *= 2
        keys = np.empty(size, dtype=np.int64)
        ests = np.empty(size, dtype=np.float64)
        keys[: self._size] = self._keys[: self._size]
        ests[: self._size] = self._ests[: self._size]
        self._keys, self._ests = keys, ests

    def _compact(self) -> None:
        """Dedup the buffer, keeping each key's latest estimate.

        Entries keep their first-insertion order so ranking ties resolve
        exactly as they did with the dict-backed pool.
        """
        if not self._has_dups:
            return
        n = self._size
        keys = self._keys[:n]
        # One stable key-sort yields everything: group boundaries mark the
        # distinct keys, the first slot of each group is its first-insertion
        # position (stable sort keeps equal keys in buffer order) and the
        # last slot its most recent estimate.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        self._has_dups = False
        first_flag = np.empty(n, dtype=bool)
        first_flag[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first_flag[1:])
        num_unique = int(np.count_nonzero(first_flag))
        if num_unique == n:
            return
        last_flag = np.empty(n, dtype=bool)
        last_flag[-1] = True
        last_flag[:-1] = first_flag[1:]
        first_idx = order[first_flag]
        last_idx = order[last_flag]
        insertion_order = np.argsort(first_idx, kind="stable")
        self._keys[:num_unique] = keys[first_idx[insertion_order]]
        self._ests[:num_unique] = self._ests[:n][last_idx[insertion_order]]
        self._size = num_unique

    def _prune(self) -> None:
        """Cut the (compacted) pool to the ``capacity`` best-ranked entries.

        Equivalent to ``argsort(-rank, stable)[:capacity]`` — every entry
        ranked strictly above the capacity-th value survives, ties at the
        boundary resolve by insertion order, and survivors end up in
        descending rank order — but selection is O(n) via ``np.partition``
        with only the ``capacity`` survivors sorted.
        """
        n = self._size
        cap = self.capacity
        rank = self._rank_value(self._ests[:n])
        if np.isnan(rank).any():
            # NaN poisons the partition threshold comparisons; the stable
            # argsort ranks NaN worst, exactly as the dict-era prune did.
            survivors = np.argsort(-rank, kind="stable")[:cap]
        else:
            threshold = np.partition(rank, n - cap)[n - cap]
            above = np.flatnonzero(rank > threshold)
            at = np.flatnonzero(rank == threshold)[: cap - above.size]
            survivors = np.concatenate([above, at])
            # Primary: descending rank; secondary: insertion position — the
            # exact order a stable descending argsort would produce.
            survivors = survivors[np.lexsort((survivors, -rank[survivors]))]
        self._keys[: survivors.size] = self._keys[survivors]
        self._ests[: survivors.size] = self._ests[survivors]
        self._size = survivors.size

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def offer(self, keys, estimates) -> None:
        """Record (or refresh) candidates with their current estimates."""
        keys = np.asarray(keys, dtype=np.int64)
        estimates = np.asarray(estimates, dtype=np.float64)
        if keys.shape != estimates.shape:
            raise ValueError("keys and estimates must align")
        n = keys.size
        if n == 0:
            return
        if self._size + n > len(self._keys):
            self._compact()
            if self._size + n > len(self._keys):
                self._grow(self._size + n)
        self._keys[self._size : self._size + n] = keys
        self._ests[self._size : self._size + n] = estimates
        self._size += n
        self._has_dups = True
        # self._size bounds the distinct-key count from above, so the pool
        # can only exceed the prune trigger if this check fires.
        if self._size > self.capacity * self.slack:
            self._compact()
            if self._size > self.capacity * self.slack:
                self._prune()

    def candidates(self) -> np.ndarray:
        """Current candidate keys (unordered)."""
        self._compact()
        return self._keys[: self._size].copy()

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Compacted ``(keys, estimates)`` copies in first-insertion order.

        This is the tracker's complete serializable state: restoring it via
        ``offer(keys, estimates)`` into a fresh tracker of the same capacity
        reproduces all future behaviour exactly (compaction is transparent —
        prune decisions depend only on the deduped pool content).
        """
        self._compact()
        return self._keys[: self._size].copy(), self._ests[: self._size].copy()

    def merge(self, other: "TopKTracker", *, sketch=None) -> "TopKTracker":
        """Merge another tracker's candidate pool into this one.

        The merge law for sharded ingestion: take the *union* of the two
        candidate pools, re-estimate every candidate with **one** gather
        query against ``sketch`` (the merged sketch — per-shard estimates
        only reflect per-shard mass, so they must not survive the merge),
        and let the normal offer path re-prune to capacity.  Without a
        sketch the pools are concatenated, ``other``'s estimates treated as
        the more recent on key collisions (dict-update semantics).
        """
        if other.two_sided != self.two_sided:
            raise ValueError(
                "trackers are mergeable only with identical sidedness; "
                f"two_sided {self.two_sided} != {other.two_sided}"
            )
        other_keys, other_ests = other.snapshot()
        if sketch is None:
            self.offer(other_keys, other_ests)
            return self
        return self.rebuild_from_pools([self.candidates(), other_keys], sketch)

    def rebuild_from_pools(self, pools, sketch) -> "TopKTracker":
        """Replace this pool with the union of candidate-key ``pools``.

        The single implementation of the sharded merge law: concatenate the
        pools, dedup to **first occurrence** (so ranking ties in the
        re-pruned pool resolve as if the shards had streamed in order),
        re-estimate every candidate with one gather query against
        ``sketch``, and re-prune through the normal offer path.  Used by
        :meth:`merge` and by ``repro.distributed.merge_shard_results``.
        """
        self.reset()
        pools = [np.asarray(p, dtype=np.int64) for p in pools]
        union = (
            np.concatenate(pools) if pools else np.empty(0, dtype=np.int64)
        )
        if union.size == 0:
            return self
        _, first = np.unique(union, return_index=True)
        union = union[np.sort(first)]
        estimates = np.asarray(sketch.query(union), dtype=np.float64)
        self.offer(union, estimates)
        return self

    def top_k(self, k: int, sketch=None) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` candidates with the largest estimates.

        Parameters
        ----------
        k:
            Number of keys to return (fewer if the pool is smaller).
        sketch:
            Optional sketch with a ``query`` method; when given, candidates
            are re-queried so the ranking reflects the *final* sketch state
            rather than the estimates observed mid-stream.

        Returns
        -------
        ``(keys, estimates)`` sorted by decreasing (two-sided: absolute)
        estimate.
        """
        self._compact()
        if self._size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = self._keys[: self._size]
        if sketch is not None:
            ests = np.asarray(sketch.query(keys.copy()), dtype=np.float64)
        else:
            ests = self._ests[: self._size]
        order = np.argsort(-self._rank_value(ests), kind="stable")[: int(k)]
        # Fancy indexing materialises fresh arrays, so no buffer views leak.
        return keys[order], ests[order]

    def reset(self) -> None:
        self._size = 0
        self._has_dups = False
