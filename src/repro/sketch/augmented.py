"""Augmented Sketch (Roy, Khan, Alonso — SIGMOD 2016), value-adapted.

ASketch keeps a small *filter* of exact counters for the hottest items in
front of a count sketch.  Updates to filtered items are exact; everything
else goes into the sketch.  When an unfiltered item's sketch estimate
overtakes the smallest filter entry, the two are swapped: the evicted item's
exact mass is pushed back into the sketch and the promoted item's estimated
mass is pulled out.

The original operates on positive frequencies; the paper compares against it
on real-valued covariance mass (Table 4), so this adaptation ranks filter
membership by accumulated value (optionally absolute value).  The filter
capacity is charged against the same float budget as the sketch:
``memory_floats = K*R + 2*capacity`` (key + value per slot).
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import ValueSketch, ensure_mergeable, validate_batch
from repro.sketch.count_sketch import CountSketch

__all__ = ["AugmentedSketch"]


class AugmentedSketch(ValueSketch):
    """Count sketch fronted by an exact filter for hot keys.

    Parameters
    ----------
    num_tables, num_buckets, seed, family:
        Parameters of the backing :class:`CountSketch`.
    filter_capacity:
        Number of exact filter slots (ASketch uses a few dozen to a few
        hundred; the harness sizes it as a small fraction of the budget).
    exchange_every:
        Promotions are evaluated once per this many insert calls — the
        batched analogue of ASketch's per-item exchange check, keeping the
        amortised cost O(1) per update.
    two_sided:
        Rank filter membership by ``|value|`` instead of signed value.
    dtype, quantum:
        Counter storage of the backing :class:`CountSketch` (see
        :mod:`repro.sketch.storage`); the exact filter keeps float64
        precision regardless — it holds only ``filter_capacity`` values.
    backend:
        Kernel backend of the backing :class:`CountSketch` (see
        :mod:`repro.sketch.kernels`); the filter itself is a dict.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        filter_capacity: int = 64,
        seed: int = 0,
        family: str = "multiply-shift",
        exchange_every: int = 1,
        two_sided: bool = False,
        dtype=np.float64,
        quantum: float | None = None,
        backend: str | None = None,
    ):
        if filter_capacity < 1:
            raise ValueError(f"filter_capacity must be >= 1, got {filter_capacity}")
        self.sketch = CountSketch(
            num_tables, num_buckets, seed=seed, family=family,
            dtype=dtype, quantum=quantum, backend=backend,
        )
        self.filter_capacity = int(filter_capacity)
        self.exchange_every = max(1, int(exchange_every))
        self.two_sided = bool(two_sided)
        self._filter: dict[int, float] = {}
        self._inserts_since_exchange = 0
        self._frozen = False

    # ------------------------------------------------------------------
    def _rank(self, values: np.ndarray) -> np.ndarray:
        return np.abs(values) if self.two_sided else values

    def _guard_frozen(self) -> None:
        # The exact filter is a plain dict, so numpy's writeable flag
        # cannot protect it: the freeze guarantee needs an explicit gate
        # *before* any state is touched (a filtered key's exact counter
        # would otherwise mutate even though the sketch path raises).
        if self._frozen:
            raise ValueError(
                "sketch counters are read-only (frozen serving snapshot); "
                "inserts must target the live write-side sketch"
            )

    def insert(self, keys, values) -> None:
        self._guard_frozen()
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        filt = self._filter
        if filt:
            in_filter = np.fromiter(
                (key in filt for key in keys.tolist()), dtype=bool, count=keys.size
            )
        else:
            in_filter = np.zeros(keys.size, dtype=bool)

        # Exact path for filtered keys.
        for key, val in zip(keys[in_filter].tolist(), values[in_filter].tolist()):
            filt[key] += val

        # Sketch path for the rest.
        cold_keys = keys[~in_filter]
        cold_values = values[~in_filter]
        self.sketch.insert(cold_keys, cold_values)

        self._inserts_since_exchange += 1
        if self._inserts_since_exchange >= self.exchange_every and cold_keys.size:
            self._inserts_since_exchange = 0
            self._exchange(np.unique(cold_keys))

    def _exchange(self, candidate_keys: np.ndarray) -> None:
        """Promote candidates whose sketch estimate beats the filter minimum."""
        filt = self._filter
        estimates = self.sketch.query(candidate_keys)
        order = np.argsort(-self._rank(estimates), kind="stable")
        for idx in order.tolist():
            key = int(candidate_keys[idx])
            est = float(estimates[idx])
            if key in filt:
                continue
            if len(filt) < self.filter_capacity:
                # Move the key's estimated mass out of the sketch and into
                # the filter so it is not double counted.
                self.sketch.insert(
                    np.asarray([key]), np.asarray([-est], dtype=np.float64)
                )
                filt[key] = est
                continue
            min_key = min(
                filt, key=(lambda k: abs(filt[k])) if self.two_sided else filt.get
            )
            min_rank = abs(filt[min_key]) if self.two_sided else filt[min_key]
            cand_rank = abs(est) if self.two_sided else est
            if cand_rank <= min_rank:
                break  # candidates are sorted; nothing further can win
            evicted_value = filt.pop(min_key)
            self.sketch.insert(
                np.asarray([min_key, key]),
                np.asarray([evicted_value, -est], dtype=np.float64),
            )
            filt[key] = est

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        out = self.sketch.query(keys)
        filt = self._filter
        if filt:
            for n, key in enumerate(keys.tolist()):
                if key in filt:
                    out[n] = filt[key]
        return out

    def reset(self) -> None:
        self._guard_frozen()
        self.sketch.reset()
        self._filter.clear()
        self._inserts_since_exchange = 0

    def freeze(self) -> "AugmentedSketch":
        """Make the whole state read-only: backing counters *and* filter.

        Queries keep working; ``insert``/``merge``/``reset`` raise before
        touching anything, so a frozen ASketch can never be left in a
        half-mutated state (the filter is exact, the sketch rejected).
        """
        self.sketch.freeze()
        self._frozen = True
        return self

    def copy(self) -> "AugmentedSketch":
        clone = AugmentedSketch(
            self.sketch.num_tables,
            self.sketch.num_buckets,
            filter_capacity=self.filter_capacity,
            seed=self.sketch.seed,
            family=self.sketch.family,
            exchange_every=self.exchange_every,
            two_sided=self.two_sided,
        )
        clone.sketch = self.sketch.copy()
        clone._filter = dict(self._filter)
        clone._inserts_since_exchange = self._inserts_since_exchange
        return clone

    def merge(self, other: "AugmentedSketch") -> "AugmentedSketch":
        """Merge another ASketch: sum the sketches, fold the exact filters.

        The backing count sketches sum exactly (linear).  Filter entries are
        exact masses *excluded* from their sketch, so they must be folded
        without double counting: a key held exactly on both sides stays
        exact (masses add); a key only in ``other``'s filter moves into this
        filter if a slot is free, otherwise its exact mass is pushed into
        the merged sketch (reverting it to a sketched key — the same
        demotion an eviction performs).  The result is approximate in the
        same sense ASketch itself is; compatibility mismatches raise
        ``ValueError``.
        """
        self._guard_frozen()
        ensure_mergeable(
            self, other, ("filter_capacity", "two_sided", "exchange_every")
        )
        self.sketch.merge(other.sketch)
        filt = self._filter
        spill_keys: list[int] = []
        spill_values: list[float] = []
        for key, val in other._filter.items():
            if key in filt:
                filt[key] += val
            elif len(filt) < self.filter_capacity:
                # Promote like _exchange does: pull the key's sketched mass
                # (this side's, plus whatever just merged in) out of the
                # sketch and into the exact slot — queries return filter
                # values verbatim, so mass left behind would become
                # invisible.
                est = self.sketch.query_single(key)
                if est != 0.0:
                    self.sketch.insert(
                        np.asarray([key]), np.asarray([-est], dtype=np.float64)
                    )
                filt[key] = val + est
            else:
                spill_keys.append(key)
                spill_values.append(val)
        if spill_keys:
            self.sketch.insert(
                np.asarray(spill_keys, dtype=np.int64),
                np.asarray(spill_values, dtype=np.float64),
            )
        # Reclaim sketched mass hiding under exact slots: the other side
        # may have held a filtered key of ours as an ordinary *sketched*
        # key, and queries answer filter slots verbatim — mass left in the
        # merged sketch under such a key would simply vanish from view.
        # Pull it into the slot (the same promotion trade _exchange makes).
        if filt:
            keys = np.fromiter(filt.keys(), dtype=np.int64, count=len(filt))
            residual = self.sketch.query(keys)
            hiding = residual != 0.0
            if hiding.any():
                self.sketch.insert(keys[hiding], -residual[hiding])
                for key, est in zip(
                    keys[hiding].tolist(), residual[hiding].tolist()
                ):
                    filt[key] += est
        return self

    @property
    def filter_keys(self) -> np.ndarray:
        """Keys currently held exactly (diagnostics and retrieval seeding)."""
        return np.fromiter(self._filter.keys(), dtype=np.int64, count=len(self._filter))

    @property
    def memory_floats(self) -> int:
        return self.sketch.memory_floats + 2 * self.filter_capacity

    @property
    def memory_bytes(self) -> int:
        # Filter slots stay float64: 8-byte key + 8-byte value per slot.
        return self.sketch.memory_bytes + 16 * self.filter_capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AugmentedSketch(K={self.sketch.num_tables}, R={self.sketch.num_buckets}, "
            f"filter_capacity={self.filter_capacity})"
        )
