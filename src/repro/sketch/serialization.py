"""Sketch serialisation — persist and restore sketch state.

Linear sketches are the natural unit of distributed aggregation and of
serving snapshots: workers sketch shards of a stream and persist, a reducer
merges, a query engine freezes.  This module round-trips sketches through
``.npz`` files (``allow_pickle=False`` throughout): hash functions are
reconstructed from the stored seed and family name, so a loaded sketch
answers queries (and merges) exactly like the original, and counter dtypes
— including quantized (fixed-point) storage and its ``quantum`` — survive
the round-trip bit-for-bit.

Two layers of API:

* :func:`sketch_to_arrays` / :func:`sketch_from_arrays` — the pure
  array-dict form, used by anything that embeds a sketch inside a larger
  ``.npz`` payload (``repro.serving.SketchSnapshot`` prefixes these keys);
* :func:`save_sketch` / :func:`load_sketch` — the file round-trip.

Kinds live in a **registry** (:func:`register_kind`): each kind supplies a
type test, an encoder and a decoder, plus the conformance metadata the
registry-wide test suite (``tests/test_conformance.py``) consumes — an
example factory and a declared merge law, so every kind registered here is
automatically held to the save/load, freeze and merge contracts.  The
built-in kinds are ``count-sketch``, ``count-min``, ``augmented`` and
``decayed`` (the :class:`repro.sketch.DecayedSketch` wrapper, which nests
its backing sketch's arrays under an ``inner_`` prefix).  Higher layers —
sliding-window pane persistence, serving snapshots — write through the same
registry, so a new sketch kind becomes persistable everywhere (and
conformance-tested) by registering once.

Decoders accept ``copy=False`` to **adopt** the provided counter table
without copying — the zero-copy mmap path: hand them a read-only
``np.memmap`` of an uncompressed ``.npz`` member
(:func:`mmap_npz_array`) and the rebuilt sketch serves queries straight
from the page cache, with writes rejected by the frozen-table guard.

``ColdFilterSketch`` is deliberately unsupported: its conservative-update
gate is order-dependent state that cannot be reconstructed faithfully from
counters alone (the same reason it refuses to merge).
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.durability.integrity import (
    IntegrityError,
    corruption_guard,
    crc32_array,
    recorded_crcs,
    verify_arrays,
    write_npz,
)
from repro.sketch.augmented import AugmentedSketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.decay import DecayedSketch
from repro.sketch.hierarchical import HierarchicalCountSketch

__all__ = [
    "save_sketch",
    "load_sketch",
    "sketch_to_arrays",
    "sketch_from_arrays",
    "register_kind",
    "supported_kinds",
    "kind_registry",
    "mmap_npz_array",
    "SUPPORTED_KINDS",
    "KindSpec",
]

#: Prefix under which the ``decayed`` kind nests its backing sketch arrays.
_INNER_PREFIX = "inner_"

#: Valid ``KindSpec.merge_law`` declarations, and what conformance enforces:
#: ``exact`` — merge is associative/commutative counter summation,
#: bit-identical to a one-shot run on exactly-representable streams;
#: ``approximate`` — merge succeeds and preserves heavy-key estimates, but
#: order may matter (e.g. ASketch filter folding);
#: ``unsupported`` — ``merge`` must raise ``ValueError`` citing
#: ``merge_reason``.
MERGE_LAWS = ("exact", "approximate", "unsupported")


@dataclass(frozen=True)
class KindSpec:
    """One serialisable sketch kind: recognition, codec and conformance.

    Attributes
    ----------
    name, cls:
        Registry key and the exact type it matches.
    to_arrays / from_arrays:
        The codec pair.  ``from_arrays(data, copy=...)`` must honour
        ``copy=False`` by adopting the counter table array it is given.
    make:
        ``make(seed) -> sketch`` — a small example instance for the
        registry-wide conformance suite.  Kinds without one fail
        conformance explicitly rather than silently escaping it.
    merge_law, merge_reason:
        Declared merge semantics (:data:`MERGE_LAWS`); ``merge_reason``
        is required for (and only for) ``unsupported``.
    """

    name: str
    cls: type
    to_arrays: Callable[[object], dict]
    from_arrays: Callable[..., object]
    make: Callable[[int], object] | None = None
    merge_law: str = "exact"
    merge_reason: str | None = None


#: kind name -> spec, in registration order (error messages enumerate these).
_KINDS: dict[str, KindSpec] = {}


def register_kind(
    name: str,
    *,
    cls: type,
    to_arrays: Callable[[object], dict],
    from_arrays: Callable[..., object],
    make: Callable[[int], object] | None = None,
    merge_law: str = "exact",
    merge_reason: str | None = None,
) -> None:
    """Register a sketch kind with the serialisation registry.

    Matching is by **exact** type — an ``isinstance`` test would misfile
    wrapper/backing relationships, e.g. an :class:`AugmentedSketch`'s
    backing :class:`CountSketch`, or a :class:`DecayedSketch`'s wrapped
    inner sketch.

    Registration is also enrolment: ``tests/test_conformance.py``
    parametrizes over this registry, so every kind registered here is
    automatically checked for save/load bit-identity, freeze immutability
    and its declared merge law.  Supply ``make`` (an example factory) and
    an honest ``merge_law``.
    """
    if merge_law not in MERGE_LAWS:
        raise ValueError(f"merge_law must be one of {MERGE_LAWS}, got {merge_law!r}")
    if (merge_law == "unsupported") != (merge_reason is not None):
        raise ValueError(
            "merge_reason is required exactly when merge_law='unsupported'"
        )
    _KINDS[name] = KindSpec(
        name=name,
        cls=cls,
        to_arrays=to_arrays,
        from_arrays=from_arrays,
        make=make,
        merge_law=merge_law,
        merge_reason=merge_reason,
    )


def _supported_kinds() -> tuple[str, ...]:
    return tuple(_KINDS)


def kind_registry() -> dict[str, KindSpec]:
    """A snapshot of the live registry (name -> :class:`KindSpec`)."""
    return dict(_KINDS)


def _kind_of(sketch) -> KindSpec:
    for spec in _KINDS.values():
        if type(sketch) is spec.cls:
            return spec
    supported = ", ".join(spec.cls.__name__ for spec in _KINDS.values())
    raise TypeError(
        f"cannot serialise {type(sketch).__name__}; supported sketch kinds "
        f"are: {supported} (ColdFilterSketch holds order-dependent "
        "gate state that counters cannot reconstruct)"
    )


def sketch_to_arrays(sketch) -> dict[str, np.ndarray]:
    """A sketch's complete state as a flat ``{name: ndarray}`` dict.

    Every value is a numpy array (scalars as 0-d arrays, strings as 0-d
    unicode), so the dict can be written via ``np.savez`` with
    ``allow_pickle=False`` — standalone or embedded under a key prefix in a
    larger payload.
    """
    spec = _kind_of(sketch)
    out = {"kind": np.asarray(spec.name)}
    out.update(spec.to_arrays(sketch))
    return out


def sketch_from_arrays(data: Mapping[str, np.ndarray], *, copy: bool = True):
    """Rebuild a sketch from :func:`sketch_to_arrays` output.

    The rebuilt sketch has identical hash functions (same seed/family) and
    an exact copy of the counters — the ``table`` dtype and any fixed-point
    ``quantum`` are preserved bit-for-bit — so queries, further inserts and
    merges behave exactly as on the original.

    With ``copy=False`` the counter table array in ``data`` is adopted
    directly (zero-copy): pass a read-only mmap view and the sketch serves
    from it without materializing the table in memory.
    """
    kind = str(data["kind"])
    if kind not in _KINDS:
        raise ValueError(
            f"unknown sketch kind {kind!r}; supported kinds are: "
            f"{', '.join(_KINDS)}"
        )
    return _KINDS[kind].from_arrays(data, copy=copy)


# ----------------------------------------------------------------------
# Built-in kinds
# ----------------------------------------------------------------------
def _quantum_from(data) -> float | None:
    if "quantum" not in data:
        return None  # pre-memory-tier file: plain float storage
    quantum = float(data["quantum"])
    return None if np.isnan(quantum) else quantum


def _table_arrays(sketch) -> dict:
    return {
        "num_tables": np.asarray(sketch.num_tables),
        "num_buckets": np.asarray(sketch.num_buckets),
        "seed": np.asarray(sketch.seed),
        "family": np.asarray(sketch.family),
        "table": sketch.table,
        "quantum": np.asarray(
            np.nan if sketch.quantum is None else sketch.quantum,
            dtype=np.float64,
        ),
    }


def _count_sketch_to_arrays(sketch: CountSketch) -> dict:
    return _table_arrays(sketch)


def _count_sketch_from_arrays(data, *, copy: bool = True) -> CountSketch:
    table = np.asarray(data["table"]) if copy else data["table"]
    sketch = CountSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        dtype=table.dtype,
        quantum=_quantum_from(data),
    )
    if copy:
        sketch.table[:] = table
    else:
        sketch._store.attach(table)
    return sketch


def _count_min_to_arrays(sketch: CountMinSketch) -> dict:
    out = _table_arrays(sketch)
    out["conservative"] = np.asarray(sketch.conservative)
    out["cap"] = np.asarray(
        np.nan if sketch.cap is None else sketch.cap, dtype=np.float64
    )
    return out


def _count_min_from_arrays(data, *, copy: bool = True) -> CountMinSketch:
    table = np.asarray(data["table"]) if copy else data["table"]
    cap = float(data["cap"])
    sketch = CountMinSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        conservative=bool(data["conservative"]),
        cap=None if np.isnan(cap) else cap,
        dtype=table.dtype,
        quantum=_quantum_from(data),
    )
    if copy:
        sketch.table[:] = table
    else:
        sketch._store.attach(table)
    return sketch


def _augmented_to_arrays(sketch: AugmentedSketch) -> dict:
    backing = sketch.sketch
    filt = sketch._filter
    out = _table_arrays(backing)
    out.update(
        {
            "filter_capacity": np.asarray(sketch.filter_capacity),
            "exchange_every": np.asarray(sketch.exchange_every),
            "two_sided": np.asarray(sketch.two_sided),
            "inserts_since_exchange": np.asarray(sketch._inserts_since_exchange),
            "filter_keys": np.fromiter(
                filt.keys(), dtype=np.int64, count=len(filt)
            ),
            "filter_values": np.fromiter(
                filt.values(), dtype=np.float64, count=len(filt)
            ),
        }
    )
    return out


def _augmented_from_arrays(data, *, copy: bool = True) -> AugmentedSketch:
    table = np.asarray(data["table"]) if copy else data["table"]
    sketch = AugmentedSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        filter_capacity=int(data["filter_capacity"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        exchange_every=int(data["exchange_every"]),
        two_sided=bool(data["two_sided"]),
        dtype=table.dtype,
        quantum=_quantum_from(data),
    )
    if copy:
        sketch.sketch.table[:] = table
    else:
        sketch.sketch._store.attach(table)
    sketch._inserts_since_exchange = int(data["inserts_since_exchange"])
    keys = np.asarray(data["filter_keys"], dtype=np.int64)
    values = np.asarray(data["filter_values"], dtype=np.float64)
    sketch._filter = dict(zip(keys.tolist(), values.tolist()))
    return sketch


def _decayed_to_arrays(sketch: DecayedSketch) -> dict:
    out = {
        "gamma": np.asarray(sketch.gamma, dtype=np.float64),
        "ticks": np.asarray(sketch.ticks),
        "scale": np.asarray(sketch._scale, dtype=np.float64),
        "flush_below": np.asarray(sketch.flush_below, dtype=np.float64),
    }
    for name, array in sketch_to_arrays(sketch.sketch).items():
        out[_INNER_PREFIX + name] = array
    return out


def _decayed_from_arrays(data, *, copy: bool = True) -> DecayedSketch:
    inner_state = {
        name[len(_INNER_PREFIX) :]: data[name]
        for name in data
        if name.startswith(_INNER_PREFIX)
    }
    wrapped = DecayedSketch(
        sketch_from_arrays(inner_state, copy=copy),
        float(data["gamma"]),
        flush_below=float(data["flush_below"]),
    )
    wrapped.ticks = int(data["ticks"])
    wrapped._scale = float(data["scale"])
    return wrapped


def _hierarchical_to_arrays(sketch: HierarchicalCountSketch) -> dict:
    out = {
        "num_tables": np.asarray(sketch.num_tables),
        "num_buckets": np.asarray(sketch.num_buckets),
        "seed": np.asarray(sketch.seed),
        "family": np.asarray(sketch.family),
        "key_space": np.asarray(sketch.key_space),
        "branching": np.asarray(sketch.branching),
        "levels": np.asarray(sketch.levels),
        # One quantum covers all levels: they are built with the same step,
        # and scale() folds any factor into every level identically.
        "quantum": np.asarray(
            np.nan if sketch.quantum is None else sketch.quantum,
            dtype=np.float64,
        ),
    }
    # Per-level members (not one stacked array): quantized levels widen
    # independently, and the "_table" suffix enrols each one in the mmap /
    # CRC-skip machinery of load_sketch and the serving snapshot loader.
    for index, level in enumerate(sketch._levels):
        out[f"level{index}_table"] = level.table
    return out


def _hierarchical_from_arrays(data, *, copy: bool = True) -> HierarchicalCountSketch:
    levels = int(data["levels"])
    tables = [data[f"level{index}_table"] for index in range(levels)]
    leaf = np.asarray(tables[0]) if copy else tables[0]
    sketch = HierarchicalCountSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        key_space=int(data["key_space"]),
        branching=int(data["branching"]),
        levels=levels,
        seed=int(data["seed"]),
        family=str(data["family"]),
        dtype=leaf.dtype,
        quantum=_quantum_from(data),
    )
    if copy:
        # load_raw adopts each persisted level's width (promoting when the
        # incoming table is wider than the leaf-derived declared dtype).
        for level, table in zip(sketch._levels, tables):
            level.load_table(np.asarray(table))
    else:
        for level, table in zip(sketch._levels, tables):
            level._store.attach(table)
    return sketch


register_kind(
    "count-sketch",
    cls=CountSketch,
    to_arrays=_count_sketch_to_arrays,
    from_arrays=_count_sketch_from_arrays,
    make=lambda seed: CountSketch(3, 256, seed=seed),
)
register_kind(
    "count-min",
    cls=CountMinSketch,
    to_arrays=_count_min_to_arrays,
    from_arrays=_count_min_from_arrays,
    make=lambda seed: CountMinSketch(3, 256, seed=seed),
)
register_kind(
    "augmented",
    cls=AugmentedSketch,
    to_arrays=_augmented_to_arrays,
    from_arrays=_augmented_from_arrays,
    make=lambda seed: AugmentedSketch(
        3, 256, filter_capacity=8, seed=seed, exchange_every=2
    ),
    # Filter folding consults the partially merged sketch, so merge order
    # can shift which keys stay exact — heavy keys survive either way.
    merge_law="approximate",
)
register_kind(
    "decayed",
    cls=DecayedSketch,
    to_arrays=_decayed_to_arrays,
    from_arrays=_decayed_from_arrays,
    make=lambda seed: DecayedSketch(CountSketch(3, 256, seed=seed), 0.5),
)
register_kind(
    "hierarchical",
    cls=HierarchicalCountSketch,
    to_arrays=_hierarchical_to_arrays,
    from_arrays=_hierarchical_from_arrays,
    make=lambda seed: HierarchicalCountSketch(
        3, 256, key_space=5000, branching=8, levels=3, seed=seed
    ),
)


#: The *built-in* serialisable sketch kinds, frozen at import time.  Kinds
#: added later through :func:`register_kind` are fully supported by
#: save/load but do not appear here — call :func:`supported_kinds` for the
#: live registry view (error messages always enumerate the live registry).
SUPPORTED_KINDS = _supported_kinds()


def supported_kinds() -> tuple[str, ...]:
    """The currently registered kind names, including late registrations."""
    return _supported_kinds()


def save_sketch(sketch, path, *, compress: bool = True) -> None:
    """Write a sketch's parameters and counters to ``path`` (``.npz``).

    The write is atomic (temp file + ``os.replace``) and every member is
    covered by a per-array CRC32 plus a manifest digest
    (:mod:`repro.durability.integrity`), which :func:`load_sketch`
    verifies — a truncated or bit-flipped file raises a clean
    :class:`~repro.durability.IntegrityError` naming the file and reason
    instead of rebuilding a silently wrong sketch.

    Parameters
    ----------
    sketch:
        Any sketch of a registered kind (:data:`SUPPORTED_KINDS`); anything
        else raises ``TypeError`` naming the supported kinds.
    path:
        Target file path (``.npz`` appended if missing).
    compress:
        Deflate the archive (default).  Pass ``False`` to store members
        raw so :func:`load_sketch` can map the counter table zero-copy
        (``mmap=True``); counter tables are high-entropy, so the size cost
        is small.
    """
    write_npz(path, sketch_to_arrays(sketch), compress=compress)


def load_sketch(
    path,
    *,
    mmap: bool = False,
    verify: bool = True,
    verify_tables: bool | None = None,
):
    """Restore a sketch written by :func:`save_sketch`.

    Integrity (``verify=True``, the default): members are checked against
    the CRCs recorded at save time; any corruption — torn tail, flipped
    bit, injected member — raises
    :class:`repro.durability.IntegrityError` naming the file and the
    reason.  Files written before the integrity layer load unverified.
    ``verify_tables`` defaults to ``True`` on the eager path (everything
    is read anyway) and ``False`` on the mmap path, preserving its
    O(headers) open cost; pass ``verify_tables=True`` there to CRC-check
    the mapped counter table too (pages fault in once, no heap copy).

    With ``mmap=True`` the counter table is a read-only ``np.memmap`` of
    the (uncompressed) archive member instead of a materialized copy:
    opening is O(metadata) regardless of table size, pages fault in on
    demand, and the frozen-table guard rejects any write path.  Requires
    the file to have been saved with ``compress=False``.
    """
    if verify_tables is None:
        verify_tables = not mmap
    source = str(path)
    with corruption_guard(source), np.load(path, allow_pickle=False) as data:
        table_members = tuple(
            name
            for name in data.files
            if name == "table" or name.endswith("_table")
        )
        if verify:
            skip = table_members if (mmap or not verify_tables) else ()
            verify_arrays(data, source=source, skip=skip)
        if not mmap:
            return sketch_from_arrays(data)
        crcs = recorded_crcs(data) if (verify and verify_tables) else {}
        state: dict[str, np.ndarray] = {}
        for name in data.files:
            if name in table_members:
                mapped = mmap_npz_array(path, name)
                if name in crcs and crc32_array(mapped) != crcs[name]:
                    raise IntegrityError(
                        f"{source}: member {name!r} failed its checksum — "
                        "the mapped counter table was corrupted on disk"
                    )
                state[name] = mapped
            else:
                state[name] = data[name]
        sketch = sketch_from_arrays(state, copy=False)
        # A mapped sketch is read-only by construction; freeze the whole
        # state so non-table side structures (an ASketch's exact filter)
        # reject writes too instead of half-mutating.
        if hasattr(sketch, "freeze"):
            sketch.freeze()
        return sketch


def mmap_npz_array(path, member: str) -> np.ndarray:
    """Zero-copy read-only ``np.memmap`` of one array inside a ``.npz``.

    A ``.npz`` is a zip of ``.npy`` members; when the member is *stored*
    (``np.savez``, not ``np.savez_compressed``) its bytes sit contiguously
    in the archive, so the array can be mapped directly: locate the
    member's data offset from its zip local header, parse the ``.npy``
    header there, and map the payload.  This is what makes snapshot "load"
    latency independent of snapshot size — nothing is read eagerly beyond
    two headers.
    """
    if not member.endswith(".npy"):
        member = member + ".npy"
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            raise KeyError(
                f"{path} has no member {member!r}; members: "
                f"{', '.join(archive.namelist())}"
            ) from None
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValueError(
                f"cannot mmap {member!r} in {path}: the archive is "
                "compressed; re-save with compress=False for zero-copy "
                "loading"
            )
        header_offset = info.header_offset
    with open(path, "rb") as handle:
        handle.seek(header_offset)
        local_header = handle.read(30)
        if local_header[:4] != b"PK\x03\x04":
            raise ValueError(f"corrupt zip local header in {path}")
        name_len = int.from_bytes(local_header[26:28], "little")
        extra_len = int.from_bytes(local_header[28:30], "little")
        handle.seek(header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:  # pragma: no cover - numpy only writes 1.0/2.0 today
            shape, fortran, dtype = np.lib.format._read_array_header(
                handle, version
            )
        data_offset = handle.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )
