"""Sketch serialisation — persist and restore sketch state.

Linear sketches are the natural unit of distributed aggregation: workers
sketch shards of a stream, persist, and a reducer merges.  This module
round-trips :class:`CountSketch` and :class:`CountMinSketch` through
``.npz`` files: the hash functions are reconstructed from the stored seed
and family name, so a loaded sketch answers queries (and merges) exactly
like the original.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch

__all__ = ["save_sketch", "load_sketch"]

_KINDS = {"count-sketch": CountSketch, "count-min": CountMinSketch}


def _kind_of(sketch) -> str:
    if isinstance(sketch, CountSketch):
        return "count-sketch"
    if isinstance(sketch, CountMinSketch):
        return "count-min"
    raise TypeError(f"cannot serialise {type(sketch).__name__}")


def save_sketch(sketch, path) -> None:
    """Write a sketch's parameters and counters to ``path`` (``.npz``).

    Parameters
    ----------
    sketch:
        A :class:`CountSketch` or :class:`CountMinSketch`.
    path:
        Target file path (numpy appends ``.npz`` if missing).
    """
    kind = _kind_of(sketch)
    extra = {}
    if kind == "count-min":
        extra["conservative"] = np.asarray(sketch.conservative)
        extra["cap"] = np.asarray(
            np.nan if sketch.cap is None else sketch.cap, dtype=np.float64
        )
    np.savez_compressed(
        path,
        kind=np.asarray(kind),
        num_tables=np.asarray(sketch.num_tables),
        num_buckets=np.asarray(sketch.num_buckets),
        seed=np.asarray(sketch.seed),
        family=np.asarray(sketch.family),
        table=sketch.table,
        **extra,
    )


def load_sketch(path):
    """Restore a sketch written by :func:`save_sketch`.

    The rebuilt sketch has identical hash functions (same seed/family), so
    queries, further inserts and merges behave exactly as on the original.
    """
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        cls = _KINDS.get(kind)
        if cls is None:
            raise ValueError(f"unknown sketch kind {kind!r} in {path}")
        kwargs = dict(
            seed=int(data["seed"]),
            family=str(data["family"]),
            dtype=data["table"].dtype,
        )
        if kind == "count-min":
            cap = float(data["cap"])
            kwargs["conservative"] = bool(data["conservative"])
            kwargs["cap"] = None if np.isnan(cap) else cap
        sketch = cls(int(data["num_tables"]), int(data["num_buckets"]), **kwargs)
        sketch.table[:] = data["table"]
    return sketch
