"""Sketch serialisation — persist and restore sketch state.

Linear sketches are the natural unit of distributed aggregation and of
serving snapshots: workers sketch shards of a stream and persist, a reducer
merges, a query engine freezes.  This module round-trips sketches through
``.npz`` files (``allow_pickle=False`` throughout): hash functions are
reconstructed from the stored seed and family name, so a loaded sketch
answers queries (and merges) exactly like the original, and counter dtypes
survive the round-trip bit-for-bit.

Two layers of API:

* :func:`sketch_to_arrays` / :func:`sketch_from_arrays` — the pure
  array-dict form, used by anything that embeds a sketch inside a larger
  ``.npz`` payload (``repro.serving.SketchSnapshot`` prefixes these keys);
* :func:`save_sketch` / :func:`load_sketch` — the file round-trip.

Kinds live in a **registry** (:func:`register_kind`): each kind supplies a
type test, an encoder and a decoder.  The built-in kinds are
``count-sketch``, ``count-min``, ``augmented`` and ``decayed`` (the
:class:`repro.sketch.DecayedSketch` wrapper, which nests its backing
sketch's arrays under an ``inner_`` prefix).  Higher layers — sliding-window
pane persistence, serving snapshots — write through the same registry, so a
new sketch kind becomes persistable everywhere by registering once.

``ColdFilterSketch`` is deliberately unsupported: its conservative-update
gate is order-dependent state that cannot be reconstructed faithfully from
counters alone (the same reason it refuses to merge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.sketch.augmented import AugmentedSketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.decay import DecayedSketch

__all__ = [
    "save_sketch",
    "load_sketch",
    "sketch_to_arrays",
    "sketch_from_arrays",
    "register_kind",
    "supported_kinds",
    "SUPPORTED_KINDS",
]

#: Prefix under which the ``decayed`` kind nests its backing sketch arrays.
_INNER_PREFIX = "inner_"


@dataclass(frozen=True)
class _KindSpec:
    """One serialisable sketch kind: how to recognise, encode and decode it."""

    name: str
    cls: type
    to_arrays: Callable[[object], dict]
    from_arrays: Callable[[Mapping[str, np.ndarray]], object]


#: kind name -> spec, in registration order (error messages enumerate these).
_KINDS: dict[str, _KindSpec] = {}


def register_kind(
    name: str,
    *,
    cls: type,
    to_arrays: Callable[[object], dict],
    from_arrays: Callable[[Mapping[str, np.ndarray]], object],
) -> None:
    """Register a sketch kind with the serialisation registry.

    Matching is by **exact** type — an ``isinstance`` test would misfile
    wrapper/backing relationships, e.g. an :class:`AugmentedSketch`'s
    backing :class:`CountSketch`, or a :class:`DecayedSketch`'s wrapped
    inner sketch.
    """
    _KINDS[name] = _KindSpec(
        name=name, cls=cls, to_arrays=to_arrays, from_arrays=from_arrays
    )


def _supported_kinds() -> tuple[str, ...]:
    return tuple(_KINDS)


def _kind_of(sketch) -> _KindSpec:
    for spec in _KINDS.values():
        if type(sketch) is spec.cls:
            return spec
    supported = ", ".join(spec.cls.__name__ for spec in _KINDS.values())
    raise TypeError(
        f"cannot serialise {type(sketch).__name__}; supported sketch kinds "
        f"are: {supported} (ColdFilterSketch holds order-dependent "
        "gate state that counters cannot reconstruct)"
    )


def sketch_to_arrays(sketch) -> dict[str, np.ndarray]:
    """A sketch's complete state as a flat ``{name: ndarray}`` dict.

    Every value is a numpy array (scalars as 0-d arrays, strings as 0-d
    unicode), so the dict can be written via ``np.savez`` with
    ``allow_pickle=False`` — standalone or embedded under a key prefix in a
    larger payload.
    """
    spec = _kind_of(sketch)
    out = {"kind": np.asarray(spec.name)}
    out.update(spec.to_arrays(sketch))
    return out


def sketch_from_arrays(data: Mapping[str, np.ndarray]):
    """Rebuild a sketch from :func:`sketch_to_arrays` output.

    The rebuilt sketch has identical hash functions (same seed/family) and
    an exact copy of the counters — the ``table`` dtype is preserved
    bit-for-bit — so queries, further inserts and merges behave exactly as
    on the original.
    """
    kind = str(data["kind"])
    if kind not in _KINDS:
        raise ValueError(
            f"unknown sketch kind {kind!r}; supported kinds are: "
            f"{', '.join(_KINDS)}"
        )
    return _KINDS[kind].from_arrays(data)


# ----------------------------------------------------------------------
# Built-in kinds
# ----------------------------------------------------------------------
def _table_arrays(sketch) -> dict:
    return {
        "num_tables": np.asarray(sketch.num_tables),
        "num_buckets": np.asarray(sketch.num_buckets),
        "seed": np.asarray(sketch.seed),
        "family": np.asarray(sketch.family),
        "table": sketch.table,
    }


def _count_sketch_to_arrays(sketch: CountSketch) -> dict:
    return _table_arrays(sketch)


def _count_sketch_from_arrays(data) -> CountSketch:
    table = np.asarray(data["table"])
    sketch = CountSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        dtype=table.dtype,
    )
    sketch.table[:] = table
    return sketch


def _count_min_to_arrays(sketch: CountMinSketch) -> dict:
    out = _table_arrays(sketch)
    out["conservative"] = np.asarray(sketch.conservative)
    out["cap"] = np.asarray(
        np.nan if sketch.cap is None else sketch.cap, dtype=np.float64
    )
    return out


def _count_min_from_arrays(data) -> CountMinSketch:
    table = np.asarray(data["table"])
    cap = float(data["cap"])
    sketch = CountMinSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        conservative=bool(data["conservative"]),
        cap=None if np.isnan(cap) else cap,
        dtype=table.dtype,
    )
    sketch.table[:] = table
    return sketch


def _augmented_to_arrays(sketch: AugmentedSketch) -> dict:
    backing = sketch.sketch
    filt = sketch._filter
    out = _table_arrays(backing)
    out.update(
        {
            "filter_capacity": np.asarray(sketch.filter_capacity),
            "exchange_every": np.asarray(sketch.exchange_every),
            "two_sided": np.asarray(sketch.two_sided),
            "inserts_since_exchange": np.asarray(sketch._inserts_since_exchange),
            "filter_keys": np.fromiter(
                filt.keys(), dtype=np.int64, count=len(filt)
            ),
            "filter_values": np.fromiter(
                filt.values(), dtype=np.float64, count=len(filt)
            ),
        }
    )
    return out


def _augmented_from_arrays(data) -> AugmentedSketch:
    sketch = AugmentedSketch(
        int(data["num_tables"]),
        int(data["num_buckets"]),
        filter_capacity=int(data["filter_capacity"]),
        seed=int(data["seed"]),
        family=str(data["family"]),
        exchange_every=int(data["exchange_every"]),
        two_sided=bool(data["two_sided"]),
    )
    sketch.sketch.table[:] = np.asarray(data["table"])
    sketch._inserts_since_exchange = int(data["inserts_since_exchange"])
    keys = np.asarray(data["filter_keys"], dtype=np.int64)
    values = np.asarray(data["filter_values"], dtype=np.float64)
    sketch._filter = dict(zip(keys.tolist(), values.tolist()))
    return sketch


def _decayed_to_arrays(sketch: DecayedSketch) -> dict:
    out = {
        "gamma": np.asarray(sketch.gamma, dtype=np.float64),
        "ticks": np.asarray(sketch.ticks),
        "scale": np.asarray(sketch._scale, dtype=np.float64),
        "flush_below": np.asarray(sketch.flush_below, dtype=np.float64),
    }
    for name, array in sketch_to_arrays(sketch.sketch).items():
        out[_INNER_PREFIX + name] = array
    return out


def _decayed_from_arrays(data) -> DecayedSketch:
    inner_state = {
        name[len(_INNER_PREFIX) :]: data[name]
        for name in data
        if name.startswith(_INNER_PREFIX)
    }
    wrapped = DecayedSketch(
        sketch_from_arrays(inner_state),
        float(data["gamma"]),
        flush_below=float(data["flush_below"]),
    )
    wrapped.ticks = int(data["ticks"])
    wrapped._scale = float(data["scale"])
    return wrapped


register_kind(
    "count-sketch",
    cls=CountSketch,
    to_arrays=_count_sketch_to_arrays,
    from_arrays=_count_sketch_from_arrays,
)
register_kind(
    "count-min",
    cls=CountMinSketch,
    to_arrays=_count_min_to_arrays,
    from_arrays=_count_min_from_arrays,
)
register_kind(
    "augmented",
    cls=AugmentedSketch,
    to_arrays=_augmented_to_arrays,
    from_arrays=_augmented_from_arrays,
)
register_kind(
    "decayed",
    cls=DecayedSketch,
    to_arrays=_decayed_to_arrays,
    from_arrays=_decayed_from_arrays,
)


#: The *built-in* serialisable sketch kinds, frozen at import time.  Kinds
#: added later through :func:`register_kind` are fully supported by
#: save/load but do not appear here — call :func:`supported_kinds` for the
#: live registry view (error messages always enumerate the live registry).
SUPPORTED_KINDS = _supported_kinds()


def supported_kinds() -> tuple[str, ...]:
    """The currently registered kind names, including late registrations."""
    return _supported_kinds()


def save_sketch(sketch, path) -> None:
    """Write a sketch's parameters and counters to ``path`` (``.npz``).

    Parameters
    ----------
    sketch:
        Any sketch of a registered kind (:data:`SUPPORTED_KINDS`); anything
        else raises ``TypeError`` naming the supported kinds.
    path:
        Target file path (numpy appends ``.npz`` if missing).
    """
    np.savez_compressed(path, **sketch_to_arrays(sketch))


def load_sketch(path):
    """Restore a sketch written by :func:`save_sketch`."""
    with np.load(path, allow_pickle=False) as data:
        return sketch_from_arrays(data)
