"""Sketch serialisation — persist and restore sketch state.

Linear sketches are the natural unit of distributed aggregation and of
serving snapshots: workers sketch shards of a stream and persist, a reducer
merges, a query engine freezes.  This module round-trips
:class:`CountSketch`, :class:`CountMinSketch` and :class:`AugmentedSketch`
through ``.npz`` files (``allow_pickle=False`` throughout): hash functions
are reconstructed from the stored seed and family name, so a loaded sketch
answers queries (and merges) exactly like the original, and counter dtypes
survive the round-trip bit-for-bit.

Two layers of API:

* :func:`sketch_to_arrays` / :func:`sketch_from_arrays` — the pure
  array-dict form, used by anything that embeds a sketch inside a larger
  ``.npz`` payload (``repro.serving.SketchSnapshot`` prefixes these keys);
* :func:`save_sketch` / :func:`load_sketch` — the file round-trip.

``ColdFilterSketch`` is deliberately unsupported: its conservative-update
gate is order-dependent state that cannot be reconstructed faithfully from
counters alone (the same reason it refuses to merge).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.sketch.augmented import AugmentedSketch
from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch

__all__ = [
    "save_sketch",
    "load_sketch",
    "sketch_to_arrays",
    "sketch_from_arrays",
    "SUPPORTED_KINDS",
]

#: kind name -> class, in the order listed by error messages.
_KIND_TO_CLS = {
    "count-sketch": CountSketch,
    "count-min": CountMinSketch,
    "augmented": AugmentedSketch,
}

#: The serialisable sketch kinds (error messages enumerate these).
SUPPORTED_KINDS = tuple(_KIND_TO_CLS)


def _kind_of(sketch) -> str:
    # isinstance would misfile AugmentedSketch's *backing* CountSketch if a
    # subclass relationship ever appeared; exact type checks keep each kind
    # unambiguous.
    for kind, cls in _KIND_TO_CLS.items():
        if type(sketch) is cls:
            return kind
    supported = ", ".join(cls.__name__ for cls in _KIND_TO_CLS.values())
    raise TypeError(
        f"cannot serialise {type(sketch).__name__}; supported sketch kinds "
        f"are: {supported} (ColdFilterSketch holds order-dependent gate "
        "state that counters cannot reconstruct)"
    )


def sketch_to_arrays(sketch) -> dict[str, np.ndarray]:
    """A sketch's complete state as a flat ``{name: ndarray}`` dict.

    Every value is a numpy array (scalars as 0-d arrays, strings as 0-d
    unicode), so the dict can be written via ``np.savez`` with
    ``allow_pickle=False`` — standalone or embedded under a key prefix in a
    larger payload.
    """
    kind = _kind_of(sketch)
    if kind == "augmented":
        backing = sketch.sketch
        filt = sketch._filter
        return {
            "kind": np.asarray(kind),
            "num_tables": np.asarray(backing.num_tables),
            "num_buckets": np.asarray(backing.num_buckets),
            "seed": np.asarray(backing.seed),
            "family": np.asarray(backing.family),
            "table": backing.table,
            "filter_capacity": np.asarray(sketch.filter_capacity),
            "exchange_every": np.asarray(sketch.exchange_every),
            "two_sided": np.asarray(sketch.two_sided),
            "inserts_since_exchange": np.asarray(sketch._inserts_since_exchange),
            "filter_keys": np.fromiter(
                filt.keys(), dtype=np.int64, count=len(filt)
            ),
            "filter_values": np.fromiter(
                filt.values(), dtype=np.float64, count=len(filt)
            ),
        }
    out = {
        "kind": np.asarray(kind),
        "num_tables": np.asarray(sketch.num_tables),
        "num_buckets": np.asarray(sketch.num_buckets),
        "seed": np.asarray(sketch.seed),
        "family": np.asarray(sketch.family),
        "table": sketch.table,
    }
    if kind == "count-min":
        out["conservative"] = np.asarray(sketch.conservative)
        out["cap"] = np.asarray(
            np.nan if sketch.cap is None else sketch.cap, dtype=np.float64
        )
    return out


def sketch_from_arrays(data: Mapping[str, np.ndarray]):
    """Rebuild a sketch from :func:`sketch_to_arrays` output.

    The rebuilt sketch has identical hash functions (same seed/family) and
    an exact copy of the counters — the ``table`` dtype is preserved
    bit-for-bit — so queries, further inserts and merges behave exactly as
    on the original.
    """
    kind = str(data["kind"])
    if kind not in _KIND_TO_CLS:
        raise ValueError(
            f"unknown sketch kind {kind!r}; supported kinds are: "
            f"{', '.join(SUPPORTED_KINDS)}"
        )
    table = np.asarray(data["table"])
    num_tables = int(data["num_tables"])
    num_buckets = int(data["num_buckets"])
    seed = int(data["seed"])
    family = str(data["family"])
    if kind == "augmented":
        sketch = AugmentedSketch(
            num_tables,
            num_buckets,
            filter_capacity=int(data["filter_capacity"]),
            seed=seed,
            family=family,
            exchange_every=int(data["exchange_every"]),
            two_sided=bool(data["two_sided"]),
        )
        sketch.sketch.table[:] = table
        sketch._inserts_since_exchange = int(data["inserts_since_exchange"])
        keys = np.asarray(data["filter_keys"], dtype=np.int64)
        values = np.asarray(data["filter_values"], dtype=np.float64)
        sketch._filter = dict(zip(keys.tolist(), values.tolist()))
        return sketch
    kwargs = dict(seed=seed, family=family, dtype=table.dtype)
    if kind == "count-min":
        cap = float(data["cap"])
        kwargs["conservative"] = bool(data["conservative"])
        kwargs["cap"] = None if np.isnan(cap) else cap
    sketch = _KIND_TO_CLS[kind](num_tables, num_buckets, **kwargs)
    sketch.table[:] = table
    return sketch


def save_sketch(sketch, path) -> None:
    """Write a sketch's parameters and counters to ``path`` (``.npz``).

    Parameters
    ----------
    sketch:
        A :class:`CountSketch`, :class:`CountMinSketch` or
        :class:`AugmentedSketch`; anything else raises ``TypeError`` naming
        the supported kinds.
    path:
        Target file path (numpy appends ``.npz`` if missing).
    """
    np.savez_compressed(path, **sketch_to_arrays(sketch))


def load_sketch(path):
    """Restore a sketch written by :func:`save_sketch`."""
    with np.load(path, allow_pickle=False) as data:
        return sketch_from_arrays(data)
