"""Shared interface for value sketches keyed by 64-bit indices.

Every sketch in this package accumulates *real-valued* updates — the paper
stores (scaled) covariance increments ``X_i^(t)/T`` rather than unit counts —
so the interface is ``insert(keys, values)`` / ``query(keys)``, both batched.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "ValueSketch",
    "ensure_mergeable",
    "validate_batch",
    "scatter_add_flat",
    "reject_readonly_counters",
]


def reject_readonly_counters(flat: np.ndarray) -> None:
    """Raise ``ValueError`` if ``flat`` must never be written.

    Two distinct hazards funnel through here:

    * an explicitly frozen table (``writeable`` flag cleared by
      ``freeze()``) — ``ufunc.at`` ignores the flag on some numpy
      versions, so numpy's own check cannot be relied on;
    * a counter array backed by a read-only (``"r"``) or copy-on-write
      (``"c"``) ``np.memmap`` — the mmap-loaded serving snapshot path.
      Mode ``"c"`` is the insidious one: its ``writeable`` flag is True,
      so a write would *succeed* into private COW pages and silently
      diverge from the file every other process maps.
    """
    readonly = not flat.flags.writeable
    if not readonly:
        base = flat
        while base is not None:
            if isinstance(base, np.memmap) and getattr(base, "mode", None) in ("r", "c"):
                readonly = True
                break
            base = getattr(base, "base", None)
    if readonly:
        raise ValueError(
            "sketch counters are read-only (frozen or mmap-backed serving "
            "snapshot); inserts must target the live write-side sketch"
        )


def ensure_mergeable(left, right, attrs: tuple[str, ...]) -> None:
    """Raise ``ValueError`` unless ``right`` can merge into ``left``.

    Linear-sketch merge (counter summation) is only meaningful between
    sketches with identical hash functions and layout, so every sketch
    class funnels its compatibility check through here: ``right`` must be
    the same type as ``left`` and agree on every attribute in ``attrs``.
    The error names the first differing attribute so distributed reducers
    surface actionable messages instead of silently corrupt merges.
    """
    if type(left) is not type(right):
        raise ValueError(
            f"sketches are mergeable only within one class: cannot merge "
            f"{type(right).__name__} into {type(left).__name__}"
        )
    for attr in attrs:
        a, b = getattr(left, attr), getattr(right, attr)
        if a != b:
            raise ValueError(
                f"{type(left).__name__} sketches are mergeable only with "
                f"identical shape, seed and family; {attr} differs: "
                f"{a!r} != {b!r}"
            )


def scatter_add_flat(
    flat: np.ndarray,
    flat_indices: np.ndarray,
    weights: np.ndarray,
    *,
    use_bincount: bool,
) -> None:
    """Accumulate ``weights`` into ``flat`` at ``flat_indices`` in one pass.

    The two strategies have different rounding *order*, so callers that
    promise bit-identical results with a pre-fusion formulation must mirror
    its strategy choice (the sketches do); callers free to trade ulp-level
    rounding for speed may pick per batch:

    * ``bincount`` sums all duplicate hits in a fresh float64 accumulator
      and adds it to the table once — fastest when the batch is a
      reasonable fraction of the table size;
    * ``np.add.at`` applies each hit to the table in input order —
      cheapest for tiny batches where allocating a dense accumulator
      dominates.

    Frozen tables and read-only/COW mmap views are rejected explicitly
    (see :func:`reject_readonly_counters`): ``ufunc.at`` ignores the
    ``writeable`` flag on some numpy versions, and a copy-on-write mmap
    would accept the write into private pages, so relying on numpy's own
    checks would let the small-batch branch silently mutate (or appear to
    mutate) a serving snapshot.
    """
    reject_readonly_counters(flat)
    if use_bincount:
        acc = np.bincount(flat_indices, weights=weights, minlength=flat.size)
        flat += acc.astype(flat.dtype, copy=False)
    else:
        np.add.at(flat, flat_indices, weights)


def validate_batch(keys, values) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and sanity-check a batch of (key, value) updates."""
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if keys.ndim != 1 or values.ndim != 1:
        raise ValueError("keys and values must be 1-D arrays")
    if keys.shape != values.shape:
        raise ValueError(
            f"keys and values must align, got {keys.shape} vs {values.shape}"
        )
    if keys.size and keys.min() < 0:
        raise ValueError("keys must be non-negative")
    return keys, values


class ValueSketch(abc.ABC):
    """Abstract base class for mergeable real-valued sketches."""

    @abc.abstractmethod
    def insert(self, keys, values) -> None:
        """Accumulate ``values[n]`` under ``keys[n]`` for every ``n``."""

    @abc.abstractmethod
    def query(self, keys) -> np.ndarray:
        """Estimate the accumulated value for each key."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Zero the sketch contents, keeping the hash functions."""

    @property
    @abc.abstractmethod
    def memory_floats(self) -> int:
        """Number of float counters held — the paper's memory budget unit."""

    def query_single(self, key: int) -> float:
        """Estimate a single key (convenience wrapper)."""
        return float(self.query(np.asarray([key], dtype=np.int64))[0])

    @property
    def memory_bytes(self) -> int:
        """Resident size of the counter storage in bytes.

        Sketches backed by a :class:`repro.sketch.storage.CounterStore`
        report its actual ``nbytes`` — itemsize-aware, so the compact
        int16/int32 tier is not misreported as 8 bytes per counter.
        Sketches without a store fall back to the float64 assumption.
        """
        store = getattr(self, "_store", None)
        if store is not None:
            return store.nbytes
        return self.memory_floats * 8
