"""Hierarchical count sketch for open-world heavy-key discovery.

A flat count sketch answers "how heavy is key ``k``?" but cannot answer
"which keys are heavy?" without someone enumerating candidates — which is
exactly the closed-world limitation the paper's trillion-entry setting
cannot afford.  :class:`HierarchicalCountSketch` stacks ``L`` count-sketch
levels over dyadic key intervals: level 0 is the ordinary flat sketch over
the keys themselves, and level ``l`` sketches the *aggregated* mass of the
interval ``[v * B**l, (v+1) * B**l)`` under the prefix key
``v = key // B**l`` (``B`` = ``branching``).  Every update feeds all
levels, so an interval's counter is the exact sum of its children's mass
plus count-sketch noise.

:meth:`find_heavy` then recovers all keys whose estimate clears a
threshold by descending the hierarchy: start from the (small) root level,
query every interval, and expand only the children of intervals whose
estimate clears ``threshold`` minus an ``l2``-calibrated noise floor.  The
touched frontier stays proportional to the number of heavy keys times
``B * L`` instead of the key-space size — the hierarchical heavy-hitter
construction of Cormode–Hadjieleftheriou, applied to the signed-value
regime of the paper.

Caveat (signed streams): an interval's sketched mass is the *signed sum*
of its children, so two large entries of opposite sign inside one interval
can cancel at coarse levels and hide from the descent.  For covariance
streams with planted positive-correlation structure (the paper's regime)
this does not arise; for adversarially signed data, shrink ``branching``
(narrower intervals cancel less) or raise ``noise_scale`` recall margins.

Merging is exact and per-level (counter sums), so the hierarchy rides the
distributed shard/reduce machinery unchanged: a merged hierarchy is
bit-identical to single-shot ingest of the concatenated stream.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.base import ValueSketch, ensure_mergeable, validate_batch
from repro.sketch.count_sketch import CountSketch

__all__ = ["HierarchicalCountSketch"]

#: Default ceiling for the root level's interval count: the descent starts
#: by querying every root interval, so the root must be cheap to scan
#: exhaustively.  1024 keys ~ one vectorised query batch.
DEFAULT_MAX_ROOT_INTERVALS = 1024


def _auto_levels(key_space: int, branching: int, max_root: int) -> int:
    """Smallest level count whose root has at most ``max_root`` intervals."""
    levels = 1
    size = key_space
    while size > max_root:
        levels += 1
        size = -(-size // branching)  # ceil division
    return levels


class HierarchicalCountSketch(ValueSketch):
    """``L`` count-sketch levels over dyadic key intervals.

    Parameters
    ----------
    num_tables, num_buckets:
        ``K`` and ``R`` shared by every level (each level is a full
        :class:`~repro.sketch.count_sketch.CountSketch`); total memory is
        ``levels * K * R`` counters.
    key_space:
        Exclusive upper bound on inserted keys.  For pair-key streams this
        is ``d * (d - 1) / 2`` (:func:`repro.hashing.num_pairs`).
    branching:
        Interval fan-out ``B`` between adjacent levels.
    levels:
        Explicit level count (``None`` auto-sizes so the root has at most
        ``max_root_intervals`` intervals).
    max_root_intervals:
        Root-size ceiling used by the auto sizing.
    seed:
        Master seed; per-level hash seeds are spawned from it, so two
        hierarchies with equal parameters and seed are mergeable.
    family, dtype, quantum, backend:
        Forwarded to every level's :class:`CountSketch` (see there).
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        key_space: int,
        branching: int = 16,
        levels: int | None = None,
        max_root_intervals: int = DEFAULT_MAX_ROOT_INTERVALS,
        seed: int = 0,
        family: str = "multiply-shift",
        dtype=np.float64,
        quantum: float | None = None,
        backend: str | None = None,
    ):
        key_space = int(key_space)
        branching = int(branching)
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if int(max_root_intervals) < 1:
            raise ValueError(
                f"max_root_intervals must be >= 1, got {max_root_intervals}"
            )
        if levels is None:
            levels = _auto_levels(key_space, branching, int(max_root_intervals))
        levels = int(levels)
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.key_space = key_space
        self.branching = branching
        self.levels = levels
        self.seed = int(seed)
        self.family = family

        # Level l sketches key // B**l; its key space is ceil(space / B**l).
        self._divisors = [branching**level for level in range(levels)]
        self._level_sizes = [
            -(-key_space // divisor) for divisor in self._divisors
        ]
        children = np.random.SeedSequence(self.seed).spawn(levels)
        self._levels = [
            CountSketch(
                self.num_tables,
                self.num_buckets,
                seed=int(child.generate_state(1)[0]),
                family=family,
                dtype=dtype,
                quantum=quantum,
                backend=backend,
            )
            for child in children
        ]
        # Per-level noise floors are O(K*R) to compute; cache them once the
        # stores are frozen (a serving snapshot descends many times).
        self._noise_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _check_keys(self, keys: np.ndarray) -> None:
        if keys.size and int(keys.max()) >= self.key_space:
            raise ValueError(
                f"keys must be < key_space ({self.key_space}); "
                f"got max key {int(keys.max())}"
            )

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        self._check_keys(keys)
        # Leaf first: a frozen hierarchy raises on the first scatter,
        # before any coarser level has been touched (no partial mutation).
        for level, divisor in zip(self._levels, self._divisors):
            level.insert(keys if divisor == 1 else keys // divisor, values)

    def insert_and_query(self, keys, values) -> np.ndarray:
        """Insert into all levels and return the leaf's post-insert estimates.

        Bit-identical to ``insert`` followed by ``query`` (the leaf level
        is an ordinary :class:`CountSketch`, whose fused path carries the
        same guarantee).
        """
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        self._check_keys(keys)
        estimates = self._levels[0].insert_and_query(keys, values)
        for level, divisor in zip(self._levels[1:], self._divisors[1:]):
            level.insert(keys // divisor, values)
        return estimates

    def query(self, keys) -> np.ndarray:
        """Leaf-level estimates — identical semantics to a flat sketch."""
        return self._levels[0].query(keys)

    def query_per_table(self, keys) -> np.ndarray:
        """All ``K`` leaf per-table estimates (rows) for diagnostic use."""
        return self._levels[0].query_per_table(keys)

    def query_level(self, keys, level: int) -> np.ndarray:
        """Estimated aggregate mass of interval keys at ``level``."""
        return self._levels[level].query(keys)

    def reset(self) -> None:
        for level in self._levels:
            level.reset()
        self._noise_cache.clear()

    def freeze(self) -> "HierarchicalCountSketch":
        """Freeze every level's counters (in place) and return ``self``."""
        for level in self._levels:
            level.freeze()
        return self

    # ------------------------------------------------------------------
    # Heavy-key discovery
    # ------------------------------------------------------------------
    def level_noise_std(self, level: int) -> float:
        """Calibrated count-sketch error scale of one level's estimates.

        The standard deviation of a single-table estimate error is
        ``||f||_2 / sqrt(R)`` where ``f`` is the level's frequency vector;
        ``||f||_2`` is itself estimated from the level's counters the
        CSH way — the median over tables of each row's ``l2`` norm (each
        row's sum of squares concentrates around ``||f||_2^2``).
        """
        store = self._levels[level]._store
        if store.frozen and level in self._noise_cache:
            return self._noise_cache[level]
        table = np.asarray(self._levels[level].table, dtype=np.float64)
        row_sq = np.einsum("kr,kr->k", table, table)
        l2 = math.sqrt(float(np.median(row_sq)))
        if store.quantum is not None:
            l2 *= store.quantum
        noise = l2 / math.sqrt(self.num_buckets)
        if store.frozen:
            self._noise_cache[level] = noise
        return noise

    def find_heavy(
        self,
        threshold: float,
        *,
        two_sided: bool = True,
        noise_scale: float = 3.0,
        limit: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """All keys whose estimate clears ``threshold``, by noise-floored descent.

        Starting from the root level, every surviving interval's ``B``
        children are expanded at the next level; an interval survives when
        its estimate's rank reaches ``threshold`` minus ``noise_scale``
        times that level's :meth:`level_noise_std` (so a heavy leaf is not
        pruned just because sketch noise nudged an ancestor below the
        threshold).  At the leaf level the exact ``threshold`` applies.

        Rank is ``abs(estimate)`` when ``two_sided`` (the default —
        matching :class:`~repro.serving.SketchSnapshot` two-sided index
        semantics) and the signed estimate otherwise.

        Returns ``(keys, estimates)`` sorted by descending rank (stable),
        truncated to ``limit`` when given.  ``threshold`` must be a
        positive, non-NaN float: the descent prunes on mass, so a
        non-positive threshold would degenerate to enumerating the entire
        key space (use a materialized index for that regime).
        """
        threshold = float(threshold)
        if math.isnan(threshold):
            raise ValueError("threshold must not be NaN")
        if not threshold > 0.0:
            raise ValueError(
                f"find_heavy requires a positive threshold, got {threshold}"
            )
        noise_scale = float(noise_scale)
        if not noise_scale >= 0.0:
            raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
        if limit is not None:
            limit = int(limit)
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")

        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if limit == 0:
            return empty
        offsets = np.arange(self.branching, dtype=np.int64)
        frontier = np.arange(self._level_sizes[-1], dtype=np.int64)
        for level in range(self.levels - 1, 0, -1):
            estimates = self._levels[level].query(frontier)
            rank = np.abs(estimates) if two_sided else estimates
            cutoff = threshold - noise_scale * self.level_noise_std(level)
            frontier = frontier[rank >= cutoff]
            if frontier.size == 0:
                return empty
            children = (frontier[:, None] * self.branching + offsets).ravel()
            frontier = children[children < self._level_sizes[level - 1]]

        estimates = self._levels[0].query(frontier)
        rank = np.abs(estimates) if two_sided else estimates
        mask = rank >= threshold
        keys, estimates, rank = frontier[mask], estimates[mask], rank[mask]
        order = np.argsort(-rank, kind="stable")
        keys, estimates = keys[order], estimates[order]
        if limit is not None:
            keys, estimates = keys[:limit], estimates[:limit]
        return keys, estimates

    # ------------------------------------------------------------------
    # Merge / persistence surface
    # ------------------------------------------------------------------
    def merge(self, other: "HierarchicalCountSketch") -> "HierarchicalCountSketch":
        """Sum another hierarchy's counters in place, level by level."""
        ensure_mergeable(
            self,
            other,
            (
                "num_tables",
                "num_buckets",
                "seed",
                "family",
                "key_space",
                "branching",
                "levels",
            ),
        )
        for mine, theirs in zip(self._levels, other._levels):
            mine.merge(theirs)
        self._noise_cache.clear()
        return self

    @property
    def table(self) -> np.ndarray:
        """The stacked ``(levels, K, R)`` counter tables (raw storage units).

        A fresh stack (not a view); use :meth:`add_table` /
        :meth:`load_table` for the reducer-side merge law.  Quantized
        levels that widened independently are upcast by the stack — both
        loaders route each slice through the storage tier's exact-widening
        machinery, so round-tripping through this property stays exact.
        """
        return np.stack([level.table for level in self._levels])

    def _level_slices(self, table: np.ndarray) -> np.ndarray:
        arr = np.asarray(table)
        expected = (self.levels, self.num_tables, self.num_buckets)
        if arr.ndim == 1:
            arr = arr.reshape(expected)
        if arr.shape != expected:
            raise ValueError(
                f"counter table shape mismatch: {arr.shape} != {expected}"
            )
        return arr

    def add_table(self, table: np.ndarray) -> "HierarchicalCountSketch":
        """Sum a stacked raw table (same shape/unit) in place, per level."""
        arr = self._level_slices(table)
        for level, sub in zip(self._levels, arr):
            level.add_table(sub)
        self._noise_cache.clear()
        return self

    def load_table(self, table: np.ndarray) -> "HierarchicalCountSketch":
        """Replace the counters with a persisted stacked raw table."""
        arr = self._level_slices(table)
        for level, sub in zip(self._levels, arr):
            level.load_table(sub)
        self._noise_cache.clear()
        return self

    def scale(self, factor: float) -> "HierarchicalCountSketch":
        """Multiply every counter value by ``factor``, all levels."""
        for level in self._levels:
            level.scale(factor)
        self._noise_cache.clear()
        return self

    def copy(self) -> "HierarchicalCountSketch":
        clone = HierarchicalCountSketch(
            self.num_tables,
            self.num_buckets,
            key_space=self.key_space,
            branching=self.branching,
            levels=self.levels,
            seed=self.seed,
            family=self.family,
        )
        for mine, theirs in zip(clone._levels, self._levels):
            mine._store = theirs._store.copy()
        return clone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def quantum(self) -> float | None:
        """Fixed-point step of quantized storage (``None`` for float)."""
        return self._levels[0].quantum

    @property
    def storage_dtype(self) -> np.dtype:
        """The leaf level's current counter dtype."""
        return self._levels[0].storage_dtype

    @property
    def memory_floats(self) -> int:
        return sum(level.memory_floats for level in self._levels)

    @property
    def memory_bytes(self) -> int:
        """Resident counter bytes across all levels (itemsize-aware)."""
        return sum(level.memory_bytes for level in self._levels)

    def l2_norm(self) -> float:
        """Frobenius norm of the leaf level's counter values."""
        return self._levels[0].l2_norm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalCountSketch(K={self.num_tables}, "
            f"R={self.num_buckets}, levels={self.levels}, "
            f"branching={self.branching}, key_space={self.key_space}, "
            f"family={self.family!r}, seed={self.seed})"
        )
