"""Unfused reference implementations for equivalence testing and benchmarking.

The fused kernels in :mod:`repro.sketch` and :mod:`repro.covariance` promise
*bit-identical* results to the straightforward per-table / per-sample
formulations they replaced.  This module preserves those formulations — the
pre-fusion code paths, verbatim in structure — so property tests can assert
exact equality and ``benchmarks/bench_kernels.py`` can measure the speedup
against the real baseline rather than a strawman.

Nothing here is used by the production paths; import cost is deferred to
call sites that need a reference.
"""

from __future__ import annotations

import numpy as np

from repro.covariance.updates import aggregate_pair_updates, sparse_sample_pairs
from repro.hashing.families import SignHash, make_family
from repro.sketch.base import ValueSketch, validate_batch

__all__ = [
    "LegacyCountSketch",
    "LegacyCountMinSketch",
    "LegacyTopKTracker",
    "LegacySparseMoments",
    "legacy_sparse_batch_pairs",
    "legacy_aggregate_sparse_batch",
]


class LegacySparseMoments:
    """Dense-bincount sparse moments: the pre-fusion implementation
    (O(dim) per batch — two length-``dim`` bincount allocations)."""

    def __init__(self, dim: int):
        self.dim = int(dim)
        self.count = 0
        self._sum = np.zeros(self.dim, dtype=np.float64)
        self._sumsq = np.zeros(self.dim, dtype=np.float64)

    def update_batch(self, indices, values, num_samples: int) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.size:
            self._sum += np.bincount(indices, weights=values, minlength=self.dim)
            self._sumsq += np.bincount(
                indices, weights=values * values, minlength=self.dim
            )
        self.count += int(num_samples)

    def std(self, floor: float = 0.0) -> np.ndarray:
        mean = self._sum / max(self.count, 1)
        var = np.maximum(self._sumsq / max(self.count, 1) - mean * mean, 0.0)
        return np.maximum(np.sqrt(var), floor)


class LegacyCountSketch(ValueSketch):
    """Per-table-loop count sketch: the pre-fusion implementation.

    Hash parameters are derived exactly as :class:`repro.sketch.CountSketch`
    derives them, so a legacy and a fused sketch built with the same
    arguments are interchangeable — and must agree bit-for-bit.
    """

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        dtype=np.float64,
    ):
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.table = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(2 * self.num_tables)
        self._bucket_hashes = [
            make_family(
                family, self.num_buckets, int(children[2 * e].generate_state(1)[0])
            )
            for e in range(self.num_tables)
        ]
        self._sign_hashes = [
            SignHash(
                int(children[2 * e + 1].generate_state(1)[0]),
                family="multiply-shift",
            )
            for e in range(self.num_tables)
        ]

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        use_bincount = keys.size * 16 >= self.num_buckets
        for e in range(self.num_tables):
            buckets = self._bucket_hashes[e](keys)
            signed = values * self._sign_hashes[e](keys)
            if use_bincount:
                self.table[e] += np.bincount(
                    buckets, weights=signed, minlength=self.num_buckets
                ).astype(self.table.dtype, copy=False)
            else:
                np.add.at(self.table[e], buckets, signed)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        return np.median(self.query_per_table(keys), axis=0)

    def query_per_table(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        estimates = np.empty((self.num_tables, keys.size), dtype=np.float64)
        for e in range(self.num_tables):
            buckets = self._bucket_hashes[e](keys)
            estimates[e] = self.table[e, buckets] * self._sign_hashes[e](keys)
        return estimates

    def reset(self) -> None:
        self.table[:] = 0.0

    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets


class LegacyCountMinSketch(ValueSketch):
    """Per-table-loop count-min: the pre-fusion implementation."""

    def __init__(
        self,
        num_tables: int,
        num_buckets: int,
        *,
        seed: int = 0,
        family: str = "multiply-shift",
        conservative: bool = False,
        cap: float | None = None,
        dtype=np.float64,
    ):
        self.num_tables = int(num_tables)
        self.num_buckets = int(num_buckets)
        self.seed = int(seed)
        self.family = family
        self.conservative = bool(conservative)
        self.cap = None if cap is None else float(cap)
        self.table = np.zeros((self.num_tables, self.num_buckets), dtype=dtype)
        seq = np.random.SeedSequence(self.seed)
        children = seq.spawn(self.num_tables)
        self._bucket_hashes = [
            make_family(
                family, self.num_buckets, int(children[e].generate_state(1)[0])
            )
            for e in range(self.num_tables)
        ]

    def _buckets(self, keys: np.ndarray) -> np.ndarray:
        out = np.empty((self.num_tables, keys.size), dtype=np.int64)
        for e in range(self.num_tables):
            out[e] = self._bucket_hashes[e](keys)
        return out

    def insert(self, keys, values) -> None:
        keys, values = validate_batch(keys, values)
        if keys.size == 0:
            return
        if (values < 0).any():
            raise ValueError("CountMinSketch accepts non-negative values only")
        if self.conservative:
            uniq, inverse = np.unique(keys, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=uniq.size)
            ub = self._buckets(uniq)
            current = np.min(
                self.table[np.arange(self.num_tables)[:, None], ub], axis=0
            )
            target = current + sums
            for e in range(self.num_tables):
                np.maximum.at(self.table[e], ub[e], target)
        else:
            buckets = self._buckets(keys)
            for e in range(self.num_tables):
                self.table[e] += np.bincount(
                    buckets[e], weights=values, minlength=self.num_buckets
                ).astype(self.table.dtype, copy=False)
        if self.cap is not None:
            np.minimum(self.table, self.cap, out=self.table)

    def query(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        buckets = self._buckets(keys)
        gathered = self.table[np.arange(self.num_tables)[:, None], buckets]
        return np.min(gathered, axis=0).astype(np.float64)

    def reset(self) -> None:
        self.table[:] = 0.0

    @property
    def memory_floats(self) -> int:
        return self.num_tables * self.num_buckets


class LegacyTopKTracker:
    """Dict-backed candidate pool: the pre-fusion implementation."""

    def __init__(self, capacity: int, *, slack: float = 2.0, two_sided: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slack <= 1.0:
            raise ValueError(f"slack must be > 1, got {slack}")
        self.capacity = int(capacity)
        self.slack = float(slack)
        self.two_sided = bool(two_sided)
        self._pool: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._pool)

    def _rank_value(self, estimates: np.ndarray) -> np.ndarray:
        return np.abs(estimates) if self.two_sided else estimates

    def offer(self, keys, estimates) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        estimates = np.asarray(estimates, dtype=np.float64)
        if keys.shape != estimates.shape:
            raise ValueError("keys and estimates must align")
        pool = self._pool
        for key, est in zip(keys.tolist(), estimates.tolist()):
            pool[key] = est
        if len(pool) > self.capacity * self.slack:
            self._prune()

    def _prune(self) -> None:
        keys = np.fromiter(self._pool.keys(), dtype=np.int64, count=len(self._pool))
        ests = np.fromiter(self._pool.values(), dtype=np.float64, count=len(self._pool))
        order = np.argsort(-self._rank_value(ests), kind="stable")[: self.capacity]
        self._pool = dict(zip(keys[order].tolist(), ests[order].tolist()))

    def candidates(self) -> np.ndarray:
        return np.fromiter(self._pool.keys(), dtype=np.int64, count=len(self._pool))

    def top_k(self, k: int, sketch=None) -> tuple[np.ndarray, np.ndarray]:
        if not self._pool:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        keys = self.candidates()
        if sketch is not None:
            ests = np.asarray(sketch.query(keys), dtype=np.float64)
        else:
            ests = np.array([self._pool[key] for key in keys.tolist()])
        order = np.argsort(-self._rank_value(ests), kind="stable")[: int(k)]
        return keys[order], ests[order]

    def reset(self) -> None:
        self._pool.clear()


def legacy_sparse_batch_pairs(
    indices: np.ndarray,
    values: np.ndarray,
    lengths: np.ndarray,
    dim: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample-loop pair expansion: the pre-fusion formulation of
    :func:`repro.covariance.sparse_batch_pairs` (same signature)."""
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keys_list: list[np.ndarray] = []
    values_list: list[np.ndarray] = []
    start = 0
    for m in lengths.tolist():
        keys, products = sparse_sample_pairs(
            indices[start : start + m], values[start : start + m], dim
        )
        if keys.size:
            keys_list.append(keys)
            values_list.append(products)
        start += m
    if not keys_list:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    return np.concatenate(keys_list), np.concatenate(values_list)


def legacy_aggregate_sparse_batch(indices, values, lengths, dim):
    """Per-sample expansion plus aggregation, as the pre-fusion sparse
    pipeline performed it (expansion loop feeding aggregate_pair_updates)."""
    keys, products = legacy_sparse_batch_pairs(indices, values, lengths, dim)
    return aggregate_pair_updates([keys], [products])
