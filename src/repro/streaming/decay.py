"""Recency-weighted (exponentially decayed) streaming estimation.

The write-side counterpart of :class:`repro.sketch.DecayedSketch`: the
moment trackers, the estimator and the pipeline subclass that together turn
the one-pass covariance sketcher into an *online* estimator whose answers
track the recent stream instead of the all-time average.

Decay is clocked in **samples**: every ingested batch of ``b`` samples ages
all previously accumulated mass by ``gamma**b`` before the new batch enters
at full weight (batch-granular decay — the same coarsening batching already
applies to the ASCS sampling decisions).  All aging is lazy scalar work:
the sketch keeps one pending scale (see :mod:`repro.sketch.decay`) and the
moment trackers keep one each, so the fused scatter/gather hot paths and
the O(nnz) moment updates are untouched.

Estimates are **decayed means**: with decayed mass ``S(t) = sum_k
gamma^(t - t_k) v_k`` and decayed weight ``W(t) = sum_k gamma^(t - t_k)``,
the estimator returns ``S(t) / W(t)`` — which equals the plain stream mean
when ``gamma == 1`` and converges to the post-drift mean within a few decay
half-lives after an abrupt distribution change.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Observer, SketchEstimator
from repro.covariance.pipeline import CovarianceSketcher
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.sketch.base import scatter_add_flat
from repro.sketch.count_sketch import CountSketch
from repro.sketch.decay import DecayedSketch, decay_from_half_life

__all__ = [
    "DecayedRunningMoments",
    "DecayedSparseMoments",
    "DecayedSketchEstimator",
    "DecayingSketcher",
    "make_decaying_sketcher",
]

#: Lazy-scale flush bound shared by the moment trackers (see DecayedSketch).
_FLUSH_BELOW = 2.0**-40


class _LazyDecayedMoments:
    """Shared lazy-scale accumulator state for the decayed moment trackers.

    Accumulators store values in a floating unit: the *actual* decayed
    accumulator is ``stored * _scale``.  Aging multiplies ``_scale`` (O(1));
    additions divide the incoming contribution by ``_scale`` (same cost as
    the undecayed update); ratios like ``mean = sum / weight`` never need
    the scale at all because it cancels.  Subclasses add only their update
    shape (dense batches vs sparse index/value pairs).
    """

    def __init__(self, dim: int, gamma: float):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.gamma = float(gamma)
        self._scale = 1.0
        self.dim = int(dim)
        self.count = 0
        self.flushes = 0
        self._weight = 0.0
        self._sum = np.zeros(self.dim, dtype=np.float64)
        self._sumsq = np.zeros(self.dim, dtype=np.float64)

    def _age(self, num_samples: int) -> None:
        if self.gamma == 1.0 or num_samples == 0:
            return
        self._scale *= self.gamma ** int(num_samples)
        if self._scale < _FLUSH_BELOW:
            self._flush()

    def _flush(self) -> None:
        self._sum *= self._scale
        self._sumsq *= self._scale
        self._weight *= self._scale
        self._scale = 1.0
        self.flushes += 1

    @property
    def weight(self) -> float:
        """Decayed effective sample count ``sum_k gamma^(age_k)``."""
        return self._weight * self._scale

    @property
    def mean(self) -> np.ndarray:
        if self._weight == 0.0:
            return np.zeros(self.dim)
        return self._sum / self._weight

    def variance(self) -> np.ndarray:
        if self._weight == 0.0:
            return np.full(self.dim, np.nan)
        mean = self._sum / self._weight
        return np.maximum(self._sumsq / self._weight - mean * mean, 0.0)

    def std(self, floor: float = 0.0) -> np.ndarray:
        return np.maximum(np.sqrt(self.variance()), floor)


class DecayedSparseMoments(_LazyDecayedMoments):
    """Decayed per-feature moments for sparse streams — O(nnz) updates.

    The recency-weighted analogue of
    :class:`repro.covariance.SparseMoments`: ``mean`` and ``variance`` are
    computed from exponentially decayed ``sum`` / ``sum of squares`` /
    sample-weight accumulators.  ``weight`` (the decayed effective count)
    replaces ``count`` in every ratio.
    """

    def update_batch(
        self, indices: np.ndarray, values: np.ndarray, num_samples: int
    ) -> None:
        """Age existing mass by ``gamma**num_samples``, then fold the batch in."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.shape != values.shape:
            raise ValueError("indices and values must align")
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        self._age(num_samples)
        if indices.size:
            if self._scale != 1.0:
                values = values / self._scale
                squares = values * values * self._scale
            else:
                squares = values * values
            use_bincount = indices.size * 16 >= self.dim
            scatter_add_flat(self._sum, indices, values, use_bincount=use_bincount)
            scatter_add_flat(self._sumsq, indices, squares, use_bincount=use_bincount)
        self.count += int(num_samples)
        self._weight += int(num_samples) / self._scale


class DecayedRunningMoments(_LazyDecayedMoments):
    """Decayed per-feature mean/variance for dense batch streams.

    Drop-in for the pipeline's :class:`repro.covariance.RunningMoments`
    duties (``update`` / ``mean`` / ``std``), computed from decayed sum and
    sum-of-squares accumulators rather than a Welford recursion (decay and
    Welford's centered M2 do not compose exactly; the sum form does).
    """

    def update(self, batch: np.ndarray) -> None:
        """Age existing mass by ``gamma**b``, then fold a ``(b, dim)`` batch in."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        if batch.shape[1] != self.dim:
            raise ValueError(
                f"batch has {batch.shape[1]} features, expected {self.dim}"
            )
        b = batch.shape[0]
        if b == 0:
            return
        self._age(b)
        inv = 1.0 / self._scale
        self._sum += batch.sum(axis=0) * inv
        self._sumsq += (batch * batch).sum(axis=0) * inv
        self.count += b
        self._weight += b * inv


class DecayedSketchEstimator(SketchEstimator):
    """Ingest-everything estimator whose answers are decayed stream means.

    Wraps a :class:`repro.sketch.DecayedSketch`: every ``ingest`` ticks the
    decay clock by the batch's sample count before inserting (so earlier
    mass ages, the new batch enters at full weight), and ``estimate``
    renormalises the sketch content by ``total_samples / decayed_weight``
    so queries return decayed means in the same units the undecayed
    estimator reports.  Snapshot export folds the same factor into the
    frozen sketch's lazy scale — one float product — so serving snapshots
    answer **bit-identically** to :meth:`estimate` at export time.
    """

    def __init__(
        self,
        sketch: DecayedSketch,
        total_samples: int,
        *,
        track_top: int = 0,
        two_sided: bool = False,
        observer: Observer | None = None,
        name: str = "DecayedCS",
    ):
        if not isinstance(sketch, DecayedSketch):
            raise TypeError(
                "DecayedSketchEstimator requires a DecayedSketch, got "
                f"{type(sketch).__name__}"
            )
        super().__init__(
            sketch,
            total_samples,
            track_top=track_top,
            two_sided=two_sided,
            observer=observer,
            name=name,
        )
        self.decayed_weight = 0.0

    @property
    def gamma(self) -> float:
        return self.sketch.gamma

    def _norm(self) -> float:
        """``total_samples / decayed_weight`` — undoes the 1/T ingest scaling
        and divides by the decayed effective count in one factor."""
        if self.decayed_weight <= 0.0:
            return 1.0
        return self.total_samples / self.decayed_weight

    def ingest(self, keys, values, num_samples: int = 1) -> None:
        self.sketch.tick(num_samples)
        self.decayed_weight = (
            self.decayed_weight * self.gamma ** int(num_samples) + int(num_samples)
        )
        super().ingest(keys, values, num_samples)

    def estimate(self, keys) -> np.ndarray:
        return self.sketch.query_scaled(keys, self._norm())

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        keys, estimates = super().top_k(k)
        norm = self._norm()
        if norm != 1.0:
            estimates = estimates * norm
        return keys, estimates

    def export_snapshot_state(self) -> dict:
        state = super().export_snapshot_state()
        # Bake the decayed-mean normalisation into the frozen copy's lazy
        # scale: snapshot queries compute backing * (scale * norm) — the
        # exact product estimate() uses — so they stay bit-identical.
        frozen = state["sketch"]
        frozen._scale = frozen._scale * self._norm()
        state["decay"] = self.gamma
        state["decayed_weight"] = self.decayed_weight
        return state


class DecayingSketcher(CovarianceSketcher):
    """Covariance pipeline whose sketch *and* moments forget exponentially.

    A drop-in :class:`repro.covariance.CovarianceSketcher` subclass: the
    per-feature moment trackers are replaced with their decayed variants
    (so correlation-mode normalisation uses the *recent* stds) and the
    estimator is expected to tick the sketch's decay clock per batch
    (:class:`DecayedSketchEstimator` does).  Build one with
    :func:`make_decaying_sketcher`.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`, optional) receives
    the decay telemetry: lazy-scale flush count across the moment
    trackers, the decayed effective weight, and the configured gamma —
    all evaluated at collect time, so the ingest hot path is untouched.
    """

    def __init__(
        self,
        dim: int,
        estimator,
        *,
        gamma: float,
        registry: MetricsRegistry | None = None,
        **kwargs,
    ):
        super().__init__(dim, estimator, **kwargs)
        self.decay = float(gamma)
        self.moments = DecayedRunningMoments(self.dim, self.decay)
        self.sparse_moments = DecayedSparseMoments(self.dim, self.decay)
        self.registry = registry if registry is not None else NullRegistry()
        reg = self.registry
        reg.gauge_fn(
            "repro_decay_flushes",
            lambda: self.moments.flushes + self.sparse_moments.flushes,
            "lazy-scale flushes across the decayed moment trackers",
        )
        reg.gauge_fn(
            "repro_decay_weight",
            lambda: self.estimator.decayed_weight
            if hasattr(self.estimator, "decayed_weight")
            else self.sparse_moments.weight,
            "decayed effective sample count of the estimator",
        )
        reg.gauge_fn(
            "repro_decay_gamma",
            lambda: self.decay,
            "per-sample decay factor",
        )


def make_decaying_sketcher(
    dim: int,
    total_samples: int,
    *,
    gamma: float | None = None,
    half_life: float | None = None,
    num_tables: int = 5,
    num_buckets: int = 4096,
    seed: int = 0,
    family: str = "multiply-shift",
    mode: str = "covariance",
    batch_size: int = 32,
    std_floor: float = 1e-6,
    track_top: int = 0,
    two_sided: bool = False,
    storage: str = "float64",
    quantum: float | None = None,
    backend: str | None = None,
    registry: MetricsRegistry | None = None,
) -> DecayingSketcher:
    """One-call factory: decayed count sketch + estimator + pipeline.

    Exactly one of ``gamma`` (per-sample decay factor) and ``half_life``
    (samples until mass halves) must be given.  The returned pipeline is
    used like any :class:`~repro.covariance.CovarianceSketcher` —
    ``fit_dense`` / ``fit_sparse`` / ``estimate_keys`` / ``top_pairs`` —
    and serves through the snapshot/engine read path unchanged.

    ``storage``/``quantum`` select the counter tier
    (:mod:`repro.sketch.storage`).  ``float32`` halves decayed-table
    memory; quantized (int16/int32) backings are rejected by
    :class:`~repro.sketch.DecayedSketch` — decayed inserts store values
    scaled by ``1/gamma^ticks``, which outgrows any fixed-point range.
    ``backend`` selects the kernel backend of the inner sketch
    (:mod:`repro.sketch.kernels`).
    """
    if (gamma is None) == (half_life is None):
        raise ValueError("specify exactly one of gamma and half_life")
    if gamma is None:
        gamma = decay_from_half_life(half_life)
    sketch = DecayedSketch(
        CountSketch(
            num_tables, num_buckets, seed=seed, family=family,
            dtype=storage, quantum=quantum, backend=backend,
        ),
        gamma,
    )
    estimator = DecayedSketchEstimator(
        sketch, total_samples, track_top=track_top, two_sided=two_sided
    )
    return DecayingSketcher(
        dim,
        estimator,
        gamma=gamma,
        registry=registry,
        mode=mode,
        centering="none",
        batch_size=batch_size,
        std_floor=std_floor,
    )
