"""Sliding-window covariance estimation as a ring of mergeable panes.

A sliding window over a count-sketched stream does not need per-sample
eviction: count sketches are linear, so a window is just a **sum of panes**
— contiguous, batch-aligned sub-streams sketched independently.  The ring
keeps the newest ``num_panes`` panes (one open, the rest closed/immutable);
ingestion only ever touches the open pane's ordinary hot path, rotation
closes the open pane into a :class:`repro.distributed.ShardResult`, and the
window estimator is materialised with **one merge pass** over the retained
panes using exactly the merge laws of PR 2
(:func:`repro.distributed.merge_shard_results`): exact counter and moment
summation, tracker-pool union re-queried against the merged sketch, ASCS
schedule position re-derived from the window's sample count.

Because pane boundaries sit on the pipeline's batch grid, the materialised
window is **bit-identical** to a one-shot
:meth:`~repro.covariance.CovarianceSketcher.fit_sparse` over the same
window's batches whenever the partial counter sums are exactly
representable (integer-valued streams; and equal up to float-addition
regrouping otherwise) — the invariant ``tests/test_pane_ring.py`` pins.

Panes persist individually as ``.npz`` files (via
:func:`repro.distributed.save_shard_result`, which serialises the sketch
state through the same kind registry as serving snapshots), so a ring can
checkpoint and resume, or panes can be produced by remote workers and
assembled into windows by a reducer.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import islice
from pathlib import Path

import numpy as np

from repro.covariance.pipeline import CovarianceSketcher
from repro.distributed.reduce import merge_shard_results
from repro.distributed.shard import (
    ShardResult,
    ShardSpec,
    extract_shard_result,
    load_shard_result,
    restore_sketcher,
    save_shard_result,
)
from repro.durability.integrity import verify_arrays, write_npz
from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["PaneRing"]

_MANIFEST = "ring.npz"


def _pack_raw(chunks: list[list]) -> dict:
    """Flatten a pane's recorded raw chunks into ``.npz``-able arrays.

    Three levels of structure survive the round-trip: per-chunk sample
    counts (the ``fit_sparse`` call boundaries), per-sample nnz, and the
    concatenated indices/values.  Values are stored as float64 — exact for
    the integer-valued and float64 streams the bit-identity law covers.
    """
    idx_parts, val_parts, sample_lens, chunk_lens = [], [], [], []
    for chunk in chunks:
        chunk_lens.append(len(chunk))
        for indices, values in chunk:
            indices = np.asarray(indices, dtype=np.int64)
            values = np.asarray(values, dtype=np.float64)
            sample_lens.append(indices.size)
            idx_parts.append(indices)
            val_parts.append(values)
    return {
        "raw_chunk_lens": np.asarray(chunk_lens, dtype=np.int64),
        "raw_sample_lens": np.asarray(sample_lens, dtype=np.int64),
        "raw_indices": (
            np.concatenate(idx_parts)
            if idx_parts
            else np.zeros(0, dtype=np.int64)
        ),
        "raw_values": (
            np.concatenate(val_parts)
            if val_parts
            else np.zeros(0, dtype=np.float64)
        ),
    }


def _unpack_raw(data) -> list[list]:
    """Rebuild recorded raw chunks from :func:`_pack_raw` members."""
    indices = data["raw_indices"]
    values = data["raw_values"]
    samples = []
    pos = 0
    for n in data["raw_sample_lens"].astype(np.int64).tolist():
        samples.append(
            (indices[pos : pos + n].copy(), values[pos : pos + n].copy())
        )
        pos += n
    chunks = []
    start = 0
    for count in data["raw_chunk_lens"].astype(np.int64).tolist():
        chunks.append(samples[start : start + count])
        start += count
    return chunks


class PaneRing:
    """Bounded ring of mergeable panes — the sliding-window write side.

    Parameters
    ----------
    spec:
        The shared :class:`repro.distributed.ShardSpec` every pane is built
        from (same seed/shape — the mergeability requirement).  ``cs`` and
        ``ascs`` methods are supported, like any sharded run.
    num_panes:
        Window size in panes.  The ring retains the open pane plus the
        ``num_panes - 1`` most recent closed panes; older panes age out of
        the window (the retention policy).
    pane_samples:
        Samples per pane.  Must be a positive multiple of
        ``spec.batch_size`` so pane boundaries sit on the pipeline's batch
        grid — the precondition for the bit-identity law above.
    registry:
        Optional :class:`repro.obs.MetricsRegistry` receiving the ring's
        telemetry: ``repro_pane_rotate_seconds`` /
        ``repro_window_merge_seconds`` histograms plus live gauges over
        rotations, retained panes and window span.  Stack owners pass
        theirs (a durable windowed sketcher shares its registry; so does
        :meth:`repro.serving.ServingEstimator.windowed`); the default is a
        no-op registry.
    retain_raw:
        The **pane retention contract** for migration.  When ``True`` the
        ring additionally keeps, per retained pane, the raw sparse sample
        chunks exactly as they were fed to the open pane's ``fit_sparse``
        — one recorded chunk per call, preserving the call/batch structure
        that pins bit-identity.  Retained raws age out with their pane,
        persist alongside it in :meth:`save` and enable :meth:`rebuild`:
        replaying the window into a sketch built from a *different*
        :class:`ShardSpec` (wider, narrower, requantized), bit-identical
        to fitting that spec over the retained window from scratch.
        Costs O(window nnz) extra memory; off by default.

    Notes
    -----
    ``ingest`` rotates **lazily**: a full open pane is closed only when the
    next sample actually arrives, so after ingesting exactly
    ``num_panes * pane_samples`` samples the window spans all of them.
    Each ``ingest`` call flushes a trailing partial batch (the
    ``fit_sparse`` contract), so feed multiples of ``spec.batch_size`` per
    call when exact batch-grid equivalence with a one-shot fit matters.

    The ring itself quacks like the write side of a
    :class:`~repro.covariance.CovarianceSketcher` (``dim`` / ``mode`` /
    ``samples_seen`` / ``fit_sparse`` / ``estimator``), so it can be handed
    directly to :class:`repro.serving.ServingEstimator` — the windowed
    serving mode.
    """

    def __init__(
        self,
        spec: ShardSpec,
        *,
        num_panes: int,
        pane_samples: int,
        registry: MetricsRegistry | None = None,
        retain_raw: bool = False,
    ):
        if num_panes < 1:
            raise ValueError(f"num_panes must be >= 1, got {num_panes}")
        if pane_samples < 1 or pane_samples % spec.batch_size != 0:
            raise ValueError(
                "pane_samples must be a positive multiple of spec.batch_size "
                f"({spec.batch_size}), got {pane_samples}"
            )
        self.spec = spec
        self.num_panes = int(num_panes)
        self.pane_samples = int(pane_samples)
        self.retain_raw = bool(retain_raw)
        self._closed: deque[ShardResult] = deque(maxlen=self.num_panes - 1)
        # Raw chunks are kept in lockstep with ``_closed`` (same maxlen), so
        # a pane and its raws age out of the window together.
        self._closed_raw: deque[list[list]] = deque(maxlen=self.num_panes - 1)
        self._open_raw: list[list] = []
        self._open = spec.build_sketcher()
        self._open_start = 0
        self._pane_seq = 0
        self.samples_seen = 0
        self.rotations = 0
        self.last_rotate_seconds = 0.0
        self.registry = registry if registry is not None else NullRegistry()
        reg = self.registry
        self._rotate_seconds = reg.histogram(
            "repro_pane_rotate_seconds",
            "open-pane close: shard-state extraction + ring append",
        )
        self._merge_seconds = reg.histogram(
            "repro_window_merge_seconds",
            "window materialisation: one merge pass over retained panes",
        )
        reg.gauge_fn(
            "repro_pane_rotations",
            lambda: self.rotations,
            "panes closed since the ring was created",
        )
        reg.gauge_fn(
            "repro_pane_retained",
            lambda: len(self._closed),
            "closed panes currently inside the window",
        )
        reg.gauge_fn(
            "repro_pane_window_span",
            lambda: self.window_span,
            "samples currently inside the window",
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.spec.dim

    @property
    def mode(self) -> str:
        return self.spec.mode

    def ingest(self, samples) -> int:
        """Stream sparse ``(indices, values)`` samples through the ring.

        Fills the open pane through the ordinary fused ingest path,
        rotating at pane boundaries.  Returns the number of samples
        ingested.
        """
        it = iter(samples)
        total = 0
        while True:
            room = self.pane_samples - self._open.samples_seen
            if room <= 0:
                # Open pane full: rotate lazily, only if more data arrives.
                try:
                    first = next(it)
                except StopIteration:
                    break
                self.rotate()
                chunk = [first]
                chunk.extend(islice(it, self.pane_samples - 1))
            else:
                chunk = list(islice(it, room))
            if not chunk:
                break
            self._open.fit_sparse(iter(chunk))
            if self.retain_raw:
                # One recorded chunk per fit_sparse call: replay must
                # reproduce the exact call structure (each call flushes a
                # trailing partial batch) for bit-identity to hold.
                self._open_raw.append(chunk)
            total += len(chunk)
            self.samples_seen += len(chunk)
        return total

    # Alias so the ring can stand in for a CovarianceSketcher write side
    # (ServingEstimator.ingest_sparse calls fit_sparse).
    def fit_sparse(self, samples) -> "PaneRing":
        self.ingest(samples)
        return self

    def fit_dense(self, batch) -> "PaneRing":
        raise NotImplementedError(
            "PaneRing windows are sparse-only (panes are ShardResults); "
            "convert dense rows to sparse samples upstream"
        )

    def rotate(self) -> ShardResult | None:
        """Close the open pane into an immutable :class:`ShardResult`.

        The closed pane joins the ring (evicting the oldest retained pane
        once ``num_panes - 1`` are held) and a fresh open pane starts at
        the next stream offset.  Rotating an empty open pane is a no-op —
        an empty pane would silently evict a real one from the window.
        """
        if self._open.samples_seen == 0:
            return None
        started = time.perf_counter()
        result = extract_shard_result(
            self._open,
            self.spec,
            shard_index=self._pane_seq,
            num_shards=self.num_panes,
            start=self._open_start,
        )
        self._closed.append(result)
        if self.retain_raw:
            self._closed_raw.append(self._open_raw)
            self._open_raw = []
        self._pane_seq += 1
        self._open_start += result.num_samples
        self._open = self.spec.build_sketcher()
        self.rotations += 1
        self.last_rotate_seconds = time.perf_counter() - started
        self._rotate_seconds.observe(self.last_rotate_seconds)
        return result

    # ------------------------------------------------------------------
    # Window materialisation (the read side)
    # ------------------------------------------------------------------
    def panes(self) -> list[ShardResult]:
        """The retained panes, oldest first, including the open pane's
        current state (extracted on the fly when non-empty)."""
        out = list(self._closed)
        if self._open.samples_seen:
            out.append(
                extract_shard_result(
                    self._open,
                    self.spec,
                    shard_index=self._pane_seq,
                    num_shards=self.num_panes,
                    start=self._open_start,
                )
            )
        return out

    def window(self) -> CovarianceSketcher:
        """Materialise the window estimator with one merge pass.

        Runs :func:`repro.distributed.merge_shard_results` over the
        retained panes — all of PR 2's merge laws apply — and returns a
        queryable pipeline covering exactly the window's samples.  An
        empty ring yields a fresh zero-state pipeline.
        """
        panes = self.panes()
        if not panes:
            return self.spec.build_sketcher()
        with self._merge_seconds.time():
            return merge_shard_results(panes)

    @property
    def estimator(self):
        """The materialised window estimator (for snapshot builders)."""
        return self.window().estimator

    def export_snapshot_state(self, lock=None) -> dict:
        """Snapshot-export hook honouring the serving lock contract.

        :meth:`repro.serving.SketchSnapshot.from_sketcher` calls this when
        present: the per-pane state extraction (counter copies) happens
        under ``lock``, but the expensive merge pass runs on the immutable
        extracted panes **after** release — so a concurrent ingester is
        blocked for a copy, not for the window materialisation.
        """
        if lock is not None:
            with lock:
                panes = self.panes()
        else:
            panes = self.panes()
        if panes:
            with self._merge_seconds.time():
                merged = merge_shard_results(panes).estimator
        else:
            merged = self.spec.build_sketcher().estimator
        return merged.export_snapshot_state()

    @property
    def window_span(self) -> int:
        """Samples currently inside the window."""
        return (
            sum(p.num_samples for p in self._closed) + self._open.samples_seen
        )

    @property
    def window_start(self) -> int:
        """Global stream offset of the oldest sample in the window."""
        if self._closed:
            return self._closed[0].start
        return self._open_start

    # ------------------------------------------------------------------
    # Migration (history-preserving re-sketch)
    # ------------------------------------------------------------------
    def rebuild(
        self,
        spec: ShardSpec,
        *,
        num_panes: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "PaneRing":
        """Re-ingest the retained window into a ring with a new spec.

        The migration primitive: replays each retained pane's recorded raw
        chunks — one ``fit_sparse`` call per recorded chunk, rotating at
        the original pane boundaries — into a fresh ring built from
        ``spec``.  The result is **bit-identical** to having run the new
        configuration over the retained window from scratch (same chunk
        and pane structure, same seed-derived hashes), while global
        bookkeeping (pane sequence numbers, stream offsets,
        ``samples_seen``, ``rotations``) carries over so merges, staleness
        accounting and downstream WAL continuity are unaffected.

        ``num_panes`` may shrink the window (decay escalation): only the
        newest ``num_panes - 1`` closed panes are replayed.  Requires
        ``retain_raw=True``; the rebuilt ring retains raws too, so it can
        itself migrate later.  ``self`` is left untouched — callers swap
        atomically after the rebuild succeeds (double-buffered migration).
        """
        if not self.retain_raw:
            raise ValueError(
                "rebuild() needs the pane retention contract: construct the "
                "ring with retain_raw=True to record replayable raw panes"
            )
        target_panes = self.num_panes if num_panes is None else int(num_panes)
        ring = PaneRing(
            spec,
            num_panes=target_panes,
            pane_samples=self.pane_samples,
            registry=registry,
            retain_raw=True,
        )
        closed = list(self._closed)
        raws = [list(chunks) for chunks in self._closed_raw]
        drop = len(closed) - max(0, target_panes - 1)
        if drop > 0:
            closed, raws = closed[drop:], raws[drop:]
        if closed:
            ring._open_start = closed[0].start
            ring._pane_seq = closed[0].shard_index
        else:
            ring._open_start = self._open_start
            ring._pane_seq = self._pane_seq
        for pane, chunks in zip(closed, raws):
            for chunk in chunks:
                ring._open.fit_sparse(iter(chunk))
                ring._open_raw.append(chunk)
            if ring._open.samples_seen != pane.num_samples:
                raise RuntimeError(
                    f"pane {pane.shard_index} replay mismatch: recorded raws "
                    f"cover {ring._open.samples_seen} samples, pane holds "
                    f"{pane.num_samples}"
                )
            ring.rotate()
        for chunk in self._open_raw:
            ring._open.fit_sparse(iter(chunk))
            ring._open_raw.append(chunk)
        # Global bookkeeping continues from the source ring: the rebuild is
        # a re-sketch of retained history, not a new stream.
        ring.samples_seen = self.samples_seen
        ring.rotations = self.rotations
        return ring

    # ------------------------------------------------------------------
    # Persistence (.npz panes + manifest, through the kind registry)
    # ------------------------------------------------------------------
    def save(self, directory) -> list[Path]:
        """Persist the ring: one ``pane-<seq>.npz`` per pane + ``ring.npz``.

        The open pane is always written (even empty) so the manifest can
        rebuild a live pipeline; stale pane files from earlier saves are
        pruned.  Returns the written pane paths, oldest first.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        panes = list(self._closed)
        panes.append(
            extract_shard_result(
                self._open,
                self.spec,
                shard_index=self._pane_seq,
                num_shards=self.num_panes,
                start=self._open_start,
            )
        )
        raws: list[list | None] = [None] * len(panes)
        if self.retain_raw:
            raws = [*self._closed_raw, self._open_raw]
        paths = []
        for pane, chunks in zip(panes, raws):
            path = directory / f"pane-{pane.shard_index:08d}.npz"
            extra = _pack_raw(chunks) if chunks is not None else None
            save_shard_result(pane, path, extra=extra)
            paths.append(path)
        # Manifest last, atomically: a crash mid-save leaves either the old
        # manifest (pointing at the old, still-present pane files) or the
        # new one — never a manifest referencing half-written panes.
        write_npz(
            directory / _MANIFEST,
            {
                "num_panes": np.asarray(self.num_panes),
                "pane_samples": np.asarray(self.pane_samples),
                "open_seq": np.asarray(self._pane_seq),
                "closed_seqs": np.asarray(
                    [p.shard_index for p in self._closed], dtype=np.int64
                ),
                "samples_seen": np.asarray(self.samples_seen),
                "rotations": np.asarray(self.rotations),
                "retain_raw": np.asarray(int(self.retain_raw)),
            },
        )
        keep = {path.name for path in paths} | {_MANIFEST}
        for stale in directory.glob("pane-*.npz"):
            if stale.name not in keep:
                stale.unlink()
        return paths

    @classmethod
    def load(cls, directory, *, registry=None) -> "PaneRing":
        """Restore a ring persisted by :meth:`save`.

        Closed panes load as immutable results; the open pane is restored
        to a live pipeline (counters, moments, sampler stats, tracker), so
        ingestion continues where it left off.  ``registry`` rebinds the
        restored ring's telemetry (rotation counts resume from the
        persisted value).
        """
        directory = Path(directory)
        with np.load(directory / _MANIFEST, allow_pickle=False) as manifest:
            verify_arrays(manifest, source=str(directory / _MANIFEST))
            num_panes = int(manifest["num_panes"])
            pane_samples = int(manifest["pane_samples"])
            open_seq = int(manifest["open_seq"])
            closed_seqs = manifest["closed_seqs"].astype(np.int64).tolist()
            samples_seen = int(manifest["samples_seen"])
            rotations = int(manifest["rotations"])
            retain_raw = (
                bool(int(manifest["retain_raw"]))
                if "retain_raw" in manifest
                else False
            )
        open_path = directory / f"pane-{open_seq:08d}.npz"
        open_result = load_shard_result(open_path)
        ring = cls(
            open_result.spec,
            num_panes=num_panes,
            pane_samples=pane_samples,
            registry=registry,
            retain_raw=retain_raw,
        )

        def pane_raw(path) -> list[list]:
            with np.load(path, allow_pickle=False) as data:
                return _unpack_raw(data)

        for seq in closed_seqs:
            pane_path = directory / f"pane-{seq:08d}.npz"
            ring._closed.append(load_shard_result(pane_path))
            if retain_raw:
                ring._closed_raw.append(pane_raw(pane_path))
        if retain_raw:
            ring._open_raw = pane_raw(open_path)
        ring._open = restore_sketcher(open_result)
        ring._open_start = open_result.start
        ring._pane_seq = open_seq
        ring.samples_seen = samples_seen
        ring.rotations = rotations
        return ring

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PaneRing(panes={len(self._closed)}+open, "
            f"pane_samples={self.pane_samples}, span={self.window_span}, "
            f"seen={self.samples_seen})"
        )
