"""Streaming estimation over unbounded, drifting streams.

Two recency mechanisms on top of the one-pass covariance sketcher, both
built so the fused ingest hot paths are untouched:

* **Exponential time decay** — :class:`repro.sketch.DecayedSketch` ages the
  whole sketch with one lazy scalar per tick; :class:`DecayedSketchEstimator`
  and :class:`DecayingSketcher` turn that into a pipeline whose estimates
  are decayed (recency-weighted) means.  Build with
  :func:`make_decaying_sketcher`.
* **Sliding windows** — :class:`PaneRing` keeps the newest panes of the
  stream as mergeable shard states and materialises a window estimator in
  one merge pass using the PR-2 merge laws.

Serving integration: hand a :class:`PaneRing` (or a
:class:`DecayingSketcher`) to :class:`repro.serving.ServingEstimator` and
snapshot swaps expose ``window_span`` / ``decay`` through the HTTP
``/stats`` route.
"""

from repro.sketch.decay import DecayedSketch, decay_from_half_life
from repro.streaming.decay import (
    DecayedRunningMoments,
    DecayedSketchEstimator,
    DecayedSparseMoments,
    DecayingSketcher,
    make_decaying_sketcher,
)
from repro.streaming.windows import PaneRing

__all__ = [
    "DecayedRunningMoments",
    "DecayedSketch",
    "DecayedSketchEstimator",
    "DecayedSparseMoments",
    "DecayingSketcher",
    "PaneRing",
    "decay_from_half_life",
    "make_decaying_sketcher",
]
