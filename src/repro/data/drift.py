"""Drift-aware stream generators: the workloads time decay is built for.

The paper's simulation streams are stationary (one block-correlation model
sampled i.i.d.).  Production traffic is not: heavy correlation structure
shifts abruptly (a deploy, a breaking-news spike), rotates gradually
(audience churn) or cycles (diurnal/seasonal patterns).  These generators
produce such streams *with known ground truth per time step*, so decayed /
windowed estimators can be scored against exactly what is true **now**
rather than what was true on average.

All three generators share one construction: a single
:class:`~repro.data.BlockCorrelationModel` provides the correlation
structure, and each *phase* relocates its signal pairs by a seeded feature
permutation (phase 0 is the identity).  Phase strengths therefore match
exactly across phases — only the signal *locations* move, which isolates
the recency behaviour under test.  Everything is deterministic given the
constructor arguments: two instances with equal parameters generate
identical sample arrays and identical ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import BlockCorrelationModel
from repro.hashing.pairs import pair_to_index

__all__ = [
    "AbruptShiftStream",
    "GradualRotationStream",
    "PeriodicChurnStream",
]


class _PhasedDriftStream:
    """Shared machinery: phased sampling from one permuted block model.

    Subclasses implement :meth:`phase_of`, mapping sample index ``t`` (0
    based) to a phase id in ``[0, num_phases)``.
    """

    def __init__(
        self,
        dim: int,
        total_samples: int,
        *,
        alpha: float = 0.02,
        num_phases: int = 2,
        seed: int = 0,
    ):
        if total_samples < 1:
            raise ValueError(f"total_samples must be >= 1, got {total_samples}")
        if num_phases < 1:
            raise ValueError(f"num_phases must be >= 1, got {num_phases}")
        self.dim = int(dim)
        self.total_samples = int(total_samples)
        self.num_phases = int(num_phases)
        self.seed = int(seed)
        self.model = BlockCorrelationModel.from_alpha(dim, alpha, seed=seed)
        # Phase 0 keeps the identity layout so comparisons against the
        # stationary benchmarks line up; later phases relocate the blocks.
        self._perms = [np.arange(self.dim, dtype=np.int64)]
        for phase in range(1, self.num_phases):
            rng = np.random.default_rng(self.seed * 7919 + 104729 + phase)
            self._perms.append(rng.permutation(self.dim).astype(np.int64))

    # ------------------------------------------------------------------
    def phase_of(self, t: int) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def phases(self) -> np.ndarray:
        """Phase id of every sample index — the drift timetable."""
        return np.asarray(
            [self.phase_of(t) for t in range(self.total_samples)], dtype=np.int64
        )

    def generate(self) -> np.ndarray:
        """The full ``(total_samples, dim)`` stream, deterministic by seed.

        Samples are drawn phase-run by phase-run from one generator, so the
        result is a pure function of the constructor arguments.
        """
        rng = np.random.default_rng(self.seed + 31337)
        phases = self.phases()
        out = np.empty((self.total_samples, self.dim), dtype=np.float64)
        start = 0
        # Contiguous runs of one phase sample as a block (vectorised).
        boundaries = np.flatnonzero(np.diff(phases)) + 1
        for stop in list(boundaries) + [self.total_samples]:
            phase = int(phases[start])
            block = self.model.sample(stop - start, rng)
            # Relocate: permuted feature perm[f] carries base feature f's
            # role, so column perm[f] receives base column f.
            out[start:stop, self._perms[phase]] = block
            start = stop
        return out

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def signal_pairs(self, phase: int) -> np.ndarray:
        """Flat pair keys of the signal pairs active in ``phase`` (sorted)."""
        if not 0 <= phase < self.num_phases:
            raise ValueError(
                f"phase must be in [0, {self.num_phases}), got {phase}"
            )
        perm = self._perms[phase]
        base = self.model
        g = base.group_size
        keys = []
        for grp in range(base.num_groups):
            members = perm[np.arange(grp * g, (grp + 1) * g, dtype=np.int64)]
            rows, cols = np.triu_indices(g, k=1)
            i = np.minimum(members[rows], members[cols])
            j = np.maximum(members[rows], members[cols])
            keys.append(pair_to_index(i, j, self.dim))
        if not keys:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(keys))

    def signal_pairs_at(self, t: int) -> np.ndarray:
        """Signal pairs active at sample index ``t`` — score recency against
        these, not the all-time union."""
        return self.signal_pairs(self.phase_of(int(t)))

    @property
    def num_signal_pairs(self) -> int:
        return self.model.num_signal_pairs


class AbruptShiftStream(_PhasedDriftStream):
    """One hard regime change: phase 0 before ``switch_at``, phase 1 after.

    The canonical decay test: after the shift, an undecayed estimator keeps
    ranking the dead phase-0 pairs (their accumulated mass dominates until
    the new regime has streamed for as long as the old one did), while a
    decayed estimator forgets them within a few half-lives.
    """

    def __init__(
        self,
        dim: int,
        total_samples: int,
        *,
        switch_at: int | None = None,
        alpha: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(
            dim, total_samples, alpha=alpha, num_phases=2, seed=seed
        )
        if switch_at is None:
            switch_at = total_samples // 2
        if not 0 <= switch_at <= total_samples:
            raise ValueError(
                f"switch_at must be in [0, {total_samples}], got {switch_at}"
            )
        self.switch_at = int(switch_at)

    def phase_of(self, t: int) -> int:
        return 0 if t < self.switch_at else 1


class GradualRotationStream(_PhasedDriftStream):
    """Gradual rotation from phase 0 to phase 1 across a transition span.

    Between ``start`` and ``stop`` each sample comes from phase 1 with
    probability ramping linearly 0 → 1 (seeded, so the timetable is
    deterministic); before ``start`` everything is phase 0, after ``stop``
    everything is phase 1.
    """

    def __init__(
        self,
        dim: int,
        total_samples: int,
        *,
        start: int | None = None,
        stop: int | None = None,
        alpha: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(
            dim, total_samples, alpha=alpha, num_phases=2, seed=seed
        )
        if start is None:
            start = total_samples // 4
        if stop is None:
            stop = 3 * total_samples // 4
        if not 0 <= start <= stop <= total_samples:
            raise ValueError(
                f"need 0 <= start <= stop <= {total_samples}, got "
                f"start={start}, stop={stop}"
            )
        self.start = int(start)
        self.stop = int(stop)
        rng = np.random.default_rng(self.seed + 271828)
        span = max(1, self.stop - self.start)
        ramp = (np.arange(span) + 0.5) / span
        self._transition = (rng.random(span) < ramp).astype(np.int64)

    def phase_of(self, t: int) -> int:
        if t < self.start:
            return 0
        if t >= self.stop:
            return 1
        return int(self._transition[t - self.start])


class PeriodicChurnStream(_PhasedDriftStream):
    """Seasonal heavy-hitter churn: phases cycle every ``period`` samples.

    Phase ``(t // period) % num_phases`` is active at sample ``t`` — the
    workload where a window spanning one period tracks each season and an
    all-time estimator blurs them together.
    """

    def __init__(
        self,
        dim: int,
        total_samples: int,
        *,
        period: int,
        num_phases: int = 4,
        alpha: float = 0.02,
        seed: int = 0,
    ):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        super().__init__(
            dim, total_samples, alpha=alpha, num_phases=num_phases, seed=seed
        )
        self.period = int(period)

    def phase_of(self, t: int) -> int:
        return (t // self.period) % self.num_phases
