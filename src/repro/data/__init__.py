"""Data substrates: synthetic models, dataset stand-ins, stream generators."""

from repro.data.dna import DNAKmerStream
from repro.data.drift import (
    AbruptShiftStream,
    GradualRotationStream,
    PeriodicChurnStream,
)
from repro.data.libsvm_like import (
    Dataset,
    make_cifar10_like,
    make_epsilon_like,
    make_gisette_like,
    make_rcv1_like,
    make_sector_like,
)
from repro.data.registry import DATASET_SPECS, DatasetSpec, dataset_names, make_dataset
from repro.data.streams import ShuffleBuffer, SparseSample, batched, dense_rows, take
from repro.data.synthetic import BlockCorrelationModel, plan_group_layout
from repro.data.url_like import URLLikeStream

__all__ = [
    "AbruptShiftStream",
    "BlockCorrelationModel",
    "DATASET_SPECS",
    "DNAKmerStream",
    "Dataset",
    "DatasetSpec",
    "GradualRotationStream",
    "PeriodicChurnStream",
    "ShuffleBuffer",
    "SparseSample",
    "URLLikeStream",
    "batched",
    "dataset_names",
    "dense_rows",
    "make_cifar10_like",
    "make_dataset",
    "make_epsilon_like",
    "make_gisette_like",
    "make_rcv1_like",
    "make_sector_like",
    "plan_group_layout",
    "take",
]
