"""DNA k-mer read streams — the paper's trillion-scale dataset, in miniature.

The paper's DNA dataset is "generated using c=1, k=12, L=200, seed=42": a
genome is sampled, reads of length ``L`` are drawn at coverage ``c``, and
each read becomes a sparse sample of k-mer counts over a feature space of
``4^k`` possible k-mers (k=12 gives the 17M features / 144 trillion pair
entries of Table 2).  Overlapping k-mers co-occur in every read that covers
their genome locus, producing the near-1.0 correlations the paper recovers.

This module reimplements that generator with configurable scale.  At the
default test scale (``k=8``, 100kb genome) the stream exercises exactly the
same code paths (sparse pair expansion, huge key space, empirical
correlation evaluation of reported pairs) while running in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.data.streams import SparseSample

__all__ = ["DNAKmerStream"]

_BASES = 4


@dataclass
class DNAKmerStream:
    """Genome -> reads -> k-mer count samples.

    Parameters
    ----------
    genome_length:
        Number of bases in the random genome.
    read_length:
        ``L`` — bases per read (paper: 200).
    coverage:
        ``c`` — expected number of reads covering each base (paper: 1).
        ``num_reads = coverage * genome_length / read_length``.
    k:
        k-mer size; the feature space is ``4^k`` (paper: 12 -> 16.7M).
    seed:
        Generator seed (paper: 42).
    """

    genome_length: int = 100_000
    read_length: int = 200
    coverage: float = 1.0
    k: int = 8
    seed: int = 42
    genome: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.k < 1 or self.k > 16:
            raise ValueError("k must be in [1, 16] for uint64 k-mer codes")
        if self.read_length <= self.k:
            raise ValueError("read_length must exceed k")
        if self.genome_length < self.read_length:
            raise ValueError("genome must be at least one read long")
        rng = np.random.default_rng(self.seed)
        self.genome = rng.integers(0, _BASES, size=self.genome_length, dtype=np.int8)
        self._powers = (_BASES ** np.arange(self.k - 1, -1, -1)).astype(np.int64)

    @property
    def dim(self) -> int:
        """Feature-space size ``4^k``."""
        return _BASES**self.k

    @property
    def num_reads(self) -> int:
        return max(1, int(self.coverage * self.genome_length / self.read_length))

    def _read_kmers(self, start: int) -> SparseSample:
        read = self.genome[start : start + self.read_length].astype(np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(read, self.k)
        codes = windows @ self._powers
        indices, counts = np.unique(codes, return_counts=True)
        return SparseSample(indices.astype(np.int64), counts.astype(np.float64))

    def __iter__(self) -> Iterator[SparseSample]:
        """Yield ``num_reads`` k-mer count samples (fresh reads each pass)."""
        rng = np.random.default_rng(self.seed + 1)
        max_start = self.genome_length - self.read_length
        for _ in range(self.num_reads):
            yield self._read_kmers(int(rng.integers(0, max_start + 1)))

    def materialize(self) -> sp.csr_matrix:
        """Full read-by-kmer count matrix — used for exact evaluation of
        reported pairs.  The column index space is the full ``4^k``; scipy
        handles the width since only observed k-mers hold data."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for r, sample in enumerate(self):
            rows.append(np.full(sample.indices.size, r, dtype=np.int64))
            cols.append(sample.indices)
            vals.append(sample.values)
        return sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.num_reads, self.dim),
        )

    def average_nnz(self, probe_reads: int = 32) -> float:
        """Average non-zeros per sample (Table 2's ``nz`` column)."""
        total = 0
        for sample in self:
            total += sample.nnz
            probe_reads -= 1
            if probe_reads <= 0:
                break
        return total / max(1, min(self.num_reads, 32))
