"""Stream utilities: sample containers, buffered shuffling, batching.

The paper's i.i.d. assumption (section 3) is satisfied in practice by
"buffering the incoming data and shuffling it before passing to the
algorithm" — :class:`ShuffleBuffer` implements exactly that, mirroring the
dataloader shuffling of pytorch/tensorflow the paper cites.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

import numpy as np

__all__ = ["SparseSample", "ShuffleBuffer", "take", "batched", "dense_rows"]


class SparseSample(NamedTuple):
    """One sparse observation: parallel arrays of feature indices/values."""

    indices: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def densify(self, dim: int) -> np.ndarray:
        out = np.zeros(dim, dtype=np.float64)
        out[np.asarray(self.indices, dtype=np.int64)] = self.values
        return out


class ShuffleBuffer:
    """Buffered stream shuffler (the section-3 i.i.d.-inducing procedure).

    Holds up to ``buffer_size`` items; each incoming item evicts (and
    yields) a uniformly random buffered one.  A full pass produces a
    near-uniform shuffle for buffer sizes a small multiple of any local
    correlation length in the source stream.
    """

    def __init__(self, source: Iterable, buffer_size: int, *, seed: int = 0):
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.source = source
        self.buffer_size = int(buffer_size)
        self.rng = np.random.default_rng(seed)

    def __iter__(self) -> Iterator:
        buffer: list = []
        for item in self.source:
            if len(buffer) < self.buffer_size:
                buffer.append(item)
                continue
            slot = int(self.rng.integers(0, self.buffer_size))
            yield buffer[slot]
            buffer[slot] = item
        self.rng.shuffle(buffer)
        yield from buffer


def take(stream: Iterable, n: int) -> Iterator:
    """Yield at most ``n`` items from ``stream``."""
    for count, item in enumerate(stream):
        if count >= n:
            return
        yield item


def batched(stream: Iterable, batch_size: int) -> Iterator[list]:
    """Group a stream into lists of ``batch_size`` (last may be short)."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch: list = []
    for item in stream:
        batch.append(item)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def dense_rows(matrix: np.ndarray) -> Iterator[np.ndarray]:
    """View a dense ``(n, d)`` array as a stream of rows."""
    for row in np.asarray(matrix, dtype=np.float64):
        yield row
