"""Dataset registry — Table 3 of the paper as code.

Maps the five evaluation dataset names to their synthetic stand-in
factories plus the metadata the paper reports (original dimension, sample
count, chosen ``alpha``).  Experiments request datasets by name so configs
stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.libsvm_like import (
    Dataset,
    make_cifar10_like,
    make_epsilon_like,
    make_gisette_like,
    make_rcv1_like,
    make_sector_like,
)

__all__ = ["DatasetSpec", "DATASET_SPECS", "dataset_names", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: factory plus the paper's Table-3 metadata."""

    name: str
    factory: Callable[..., Dataset]
    paper_dim: int
    paper_samples: int
    alpha: float
    default_n: int


DATASET_SPECS: dict[str, DatasetSpec] = {
    "gisette": DatasetSpec("gisette", make_gisette_like, 5_000, 6_000, 0.02, 6_000),
    "epsilon": DatasetSpec("epsilon", make_epsilon_like, 2_000, 400_000, 0.10, 8_000),
    "cifar10": DatasetSpec("cifar10", make_cifar10_like, 3_072, 50_000, 0.10, 8_000),
    "rcv1": DatasetSpec("rcv1", make_rcv1_like, 47_236, 20_242, 0.005, 8_000),
    "sector": DatasetSpec("sector", make_sector_like, 55_197, 6_412, 0.005, 6_400),
}


def dataset_names() -> tuple[str, ...]:
    """The five evaluation datasets in the paper's Table-3 order."""
    return ("gisette", "epsilon", "cifar10", "sector", "rcv1")


def make_dataset(
    name: str, *, d: int = 1000, n: int | None = None, seed: int = 0
) -> Dataset:
    """Instantiate a named dataset at the requested scale.

    The paper subsamples every dataset to 1000 features for the rigorous
    evaluations (section 8.3); ``d`` defaults accordingly.
    """
    spec = DATASET_SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    return spec.factory(d=d, n=n if n is not None else spec.default_n, seed=seed)
