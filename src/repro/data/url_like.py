"""URL-like sparse binary attribute streams (Table 2's first dataset).

The real "url" dataset has 2.4M lexical/host-based binary features with
~120 non-zeros per sample; its top correlations come from attribute groups
that co-occur on malicious hosts.  This generator plants exactly that
structure at configurable scale: a set of token groups whose members appear
together whenever the group fires, over a uniform background of singleton
tokens.  The planted pairs have analytically strong (near 1) empirical
correlation, the background pairs hover near zero — the regime where
Table 2 shows ASCS recovering the top pairs at 10x less memory than CS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.data.streams import SparseSample
from repro.hashing.pairs import pair_to_index

__all__ = ["URLLikeStream"]


@dataclass
class URLLikeStream:
    """Sparse binary stream with planted co-occurring token groups.

    Parameters
    ----------
    dim:
        Feature-space size.
    num_samples:
        Stream length.
    num_groups / group_size:
        Planted co-occurrence groups (disjoint feature blocks).
    group_prob:
        Probability a sample activates some group (groups uniform).
    member_prob:
        Probability each member token appears when its group fires.
    background_nnz:
        Number of uniform background tokens per sample.
    seed:
        Stream seed.
    """

    dim: int = 20_000
    num_samples: int = 20_000
    num_groups: int = 50
    group_size: int = 6
    group_prob: float = 0.25
    member_prob: float = 0.95
    background_nnz: int = 60
    seed: int = 0
    groups: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_groups * self.group_size > self.dim:
            raise ValueError("planted groups exceed the feature space")
        # Blocks occupy the head of the feature space; background tokens are
        # drawn from the whole space, so planted features also get
        # background hits (realistic noise on the signal).
        self.groups = np.arange(
            self.num_groups * self.group_size, dtype=np.int64
        ).reshape(self.num_groups, self.group_size)

    def __iter__(self) -> Iterator[SparseSample]:
        rng = np.random.default_rng(self.seed)
        planted = self.num_groups * self.group_size
        for _ in range(self.num_samples):
            feats: list[np.ndarray] = []
            if rng.random() < self.group_prob:
                grp = self.groups[int(rng.integers(0, self.num_groups))]
                mask = rng.random(self.group_size) < self.member_prob
                feats.append(grp[mask])
            # Background tokens come from the non-planted tail so the planted
            # pair correlations stay near member_prob (no dilution).
            feats.append(
                rng.integers(planted, self.dim, size=self.background_nnz).astype(
                    np.int64
                )
            )
            indices = np.unique(np.concatenate(feats))
            yield SparseSample(indices, np.ones(indices.size, dtype=np.float64))

    def materialize(self) -> sp.csr_matrix:
        """Full sample-by-feature binary matrix for exact evaluation."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        for r, sample in enumerate(self):
            rows.append(np.full(sample.indices.size, r, dtype=np.int64))
            cols.append(sample.indices)
        row = np.concatenate(rows)
        col = np.concatenate(cols)
        return sp.csr_matrix(
            (np.ones(row.size), (row, col)), shape=(self.num_samples, self.dim)
        )

    def planted_pair_keys(self) -> np.ndarray:
        """Flat keys of all intra-group pairs — the planted signals."""
        keys = []
        rows, cols = np.triu_indices(self.group_size, k=1)
        for grp in self.groups:
            keys.append(pair_to_index(grp[rows], grp[cols], self.dim))
        return np.concatenate(keys)

    @property
    def average_nnz(self) -> float:
        """Expected non-zeros per sample."""
        return (
            self.background_nnz
            + self.group_prob * self.member_prob * self.group_size
        )
