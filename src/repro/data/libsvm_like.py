"""Synthetic stand-ins for the paper's five LIBSVM datasets (Table 3).

No network access means the real gisette/epsilon/cifar10/rcv1/sector files
cannot be downloaded, so each generator reproduces the *statistical
character* that section 8.3 actually exercises: dimension (after the
paper's 1000-feature subsample), sample count, sparsity pattern and — most
importantly — the shape of the correlation spectrum (how many strong
pairs exist and how fast the tail decays; compare Figure 1).  Ground truth
for every experiment is the exact empirical correlation matrix of the
generated data, exactly as the paper computes it for the real datasets.

Generator design per dataset:

* ``gisette`` — dense handwriting features: moderate number of very strong
  blocks (digit strokes co-activate), heavy noise floor.
* ``epsilon`` — dense standardized features: many weak/moderate blocks.
* ``cifar10`` — pixels: a 1-D moving-average field giving smoothly decaying
  neighbour correlations (lots of moderate pairs, no extreme ones).
* ``rcv1`` / ``sector`` — sparse tf-idf text: topic model where documents
  activate topics whose member terms co-occur, yielding few but very strong
  correlations on a near-zero background.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.data.synthetic import BlockCorrelationModel

__all__ = ["Dataset", "make_gisette_like", "make_epsilon_like", "make_cifar10_like",
           "make_rcv1_like", "make_sector_like"]


@dataclass
class Dataset:
    """A named dataset with the paper's per-dataset evaluation metadata."""

    name: str
    X: object  # (n, d) ndarray or scipy.sparse matrix
    alpha: float  # Table-3 signal-fraction choice
    description: str = ""

    @property
    def n(self) -> int:
        return self.X.shape[0]

    @property
    def d(self) -> int:
        return self.X.shape[1]

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.X)

    def dense(self) -> np.ndarray:
        if self.is_sparse:
            return np.asarray(self.X.toarray(), dtype=np.float64)
        return np.asarray(self.X, dtype=np.float64)


def make_gisette_like(d: int = 1000, n: int = 6000, seed: int = 0) -> Dataset:
    """Dense, strongly block-correlated — gisette's handwriting features.

    Paper choice: alpha = 2%.  Top correlations approach 1.0 (Figure 6a's
    bracket values), so blocks use rho in (0.6, 0.97).
    """
    model = BlockCorrelationModel.from_alpha(
        d, alpha=0.02, rho_range=(0.6, 0.97), seed=seed
    )
    rng = np.random.default_rng(seed + 7)
    X = model.sample(n, rng)
    # gisette features are non-negative pixel-ish intensities with heavy
    # tails; a softplus-style warp preserves correlations approximately
    # while matching the marginal character.
    X = np.abs(X) ** 1.2 * np.sign(X) + 0.05 * rng.standard_normal((n, d))
    return Dataset(
        "gisette", X, alpha=0.02, description="dense, strong blocks (synthetic)"
    )


def make_epsilon_like(d: int = 1000, n: int = 8000, seed: int = 0) -> Dataset:
    """Dense standardized features with many moderate correlations.

    Paper choice: alpha = 10% (epsilon has a fat spectrum of weak signal);
    top correlations sit around 0.5-0.7 (Table 4).
    """
    model = BlockCorrelationModel.from_alpha(
        d, alpha=0.10, rho_range=(0.25, 0.7), seed=seed
    )
    X = model.sample(n)
    return Dataset(
        "epsilon", X, alpha=0.10, description="dense, moderate blocks (synthetic)"
    )


def make_cifar10_like(d: int = 1000, n: int = 8000, seed: int = 0) -> Dataset:
    """Pixel field with smoothly decaying neighbour correlations.

    A width-``w`` moving average of white noise gives
    ``corr(x_i, x_j) = max(0, 1 - |i-j|/w)`` — many moderate pairs and no
    extreme ones, which is exactly cifar10's profile in Table 4 (top mean
    correlation only ~0.4-0.6).  Paper choice: alpha = 10%.
    """
    rng = np.random.default_rng(seed)
    window = 12
    base = rng.standard_normal((n, d + window - 1))
    kernel = np.ones(window) / np.sqrt(window)
    # Moving average along the feature axis.
    X = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, base
    )
    X += 0.35 * rng.standard_normal((n, d))
    return Dataset(
        "cifar10", X, alpha=0.10, description="pixel field, decaying neighbour corr (synthetic)"
    )


def _topic_model(
    name: str,
    d: int,
    n: int,
    *,
    alpha: float,
    num_topics: int,
    topic_size: int,
    doc_topics: int,
    member_prob: float,
    background_nnz: int,
    seed: int,
) -> Dataset:
    """Sparse tf-idf-style topic co-occurrence generator (rcv1/sector).

    Topics occupy disjoint blocks at the head of the feature space and
    background tokens come from the tail, so intra-topic pairs keep the
    strong (~member_prob) correlations that text co-occurrence exhibits;
    everything else is near-zero — the paper's rcv1/sector regime.
    """
    rng = np.random.default_rng(seed)
    planted = num_topics * topic_size
    if planted >= d:
        raise ValueError(
            f"{planted} topic features exceed d={d}; reduce topics or size"
        )
    topics = np.arange(planted, dtype=np.int64).reshape(num_topics, topic_size)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for doc in range(n):
        chosen = rng.choice(num_topics, size=doc_topics, replace=False)
        feats: list[np.ndarray] = []
        for t in chosen:
            mask = rng.random(topic_size) < member_prob
            feats.append(topics[t][mask])
        feats.append(
            rng.integers(planted, d, size=background_nnz).astype(np.int64)
        )
        idx = np.unique(np.concatenate(feats))
        tfidf = rng.lognormal(mean=0.0, sigma=0.25, size=idx.size)
        rows.append(np.full(idx.size, doc, dtype=np.int64))
        cols.append(idx)
        vals.append(tfidf)
    X = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, d),
    )
    return Dataset(
        name, X, alpha=alpha, description="sparse tf-idf topic model (synthetic)"
    )


def make_rcv1_like(d: int = 1000, n: int = 8000, seed: int = 0) -> Dataset:
    """Sparse text (Reuters-like).  Paper choice: alpha = 0.5%; top
    correlations very strong (0.85-0.97 in Table 4)."""
    num_topics = max(2, d // 15)
    return _topic_model(
        "rcv1",
        d,
        n,
        alpha=0.005,
        num_topics=num_topics,
        topic_size=8,
        doc_topics=2,
        member_prob=0.9,
        background_nnz=max(6, d // 50),
        seed=seed,
    )


def make_sector_like(d: int = 1000, n: int = 6400, seed: int = 0) -> Dataset:
    """Sparse text (industry-sector-like).  Paper choice: alpha = 0.5%."""
    num_topics = max(2, d // 20)
    return _topic_model(
        "sector",
        d,
        n,
        alpha=0.005,
        num_topics=num_topics,
        topic_size=9,
        doc_topics=1,
        member_prob=0.9,
        background_nnz=max(8, d // 40),
        seed=seed,
    )
