"""The paper's simulation dataset (section 6.2): sparse-covariance Gaussians.

"We simulate multiple normal datasets using a true covariance matrix where
we set the proportion of signal covariance to alpha ... the strength of
signal covariances are uniformly sampled between 0.5 and 1."

A valid (PSD) sparse correlation matrix with a controllable number of
strong entries is built from disjoint equicorrelated feature groups: a
group of size ``g`` with intra-group correlation ``rho`` contributes
``g*(g-1)/2`` signal pairs, is trivially PSD for ``rho`` in ``(0, 1)``, and
samples in O(n*d) via the factor construction
``x = sqrt(rho) * z_group + sqrt(1-rho) * noise``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.pairs import num_pairs, pair_to_index

__all__ = ["BlockCorrelationModel", "plan_group_layout"]


def plan_group_layout(
    dim: int, alpha: float, *, max_feature_fraction: float = 0.85
) -> tuple[int, int]:
    """Choose (group_size, num_groups) hitting ``~alpha * p`` signal pairs.

    At most ``max_feature_fraction`` of the features are placed in groups;
    the rest stay independent noise features.  Larger ``alpha`` therefore
    forces larger groups (each feature buys ``(g-1)/2`` pairs).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    p = num_pairs(dim)
    target_pairs = max(1, int(round(alpha * p)))
    budget = max(2, int(max_feature_fraction * dim))
    for group_size in range(2, budget + 1):
        pairs_per_group = group_size * (group_size - 1) // 2
        num_groups = max(1, round(target_pairs / pairs_per_group))
        if num_groups * group_size <= budget:
            return group_size, int(num_groups)
    raise ValueError(
        f"cannot place alpha={alpha} signal pairs among d={dim} features"
    )


@dataclass
class BlockCorrelationModel:
    """Disjoint equicorrelated blocks + independent noise features.

    Attributes
    ----------
    dim:
        Total number of features ``d``.
    group_size:
        Features per correlated block.
    num_groups:
        Number of blocks; block ``g`` occupies features
        ``[g*group_size, (g+1)*group_size)``.
    rhos:
        Intra-block correlation per block (the signal strengths).
    seed:
        Seed for :meth:`sample`.
    """

    dim: int
    group_size: int
    num_groups: int
    rhos: np.ndarray
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if self.num_groups * self.group_size > self.dim:
            raise ValueError("groups exceed the feature budget")
        self.rhos = np.asarray(self.rhos, dtype=np.float64)
        if self.rhos.shape != (self.num_groups,):
            raise ValueError(f"need {self.num_groups} rhos, got {self.rhos.shape}")
        if ((self.rhos <= 0) | (self.rhos >= 1)).any():
            raise ValueError("rhos must lie strictly inside (0, 1)")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    @classmethod
    def from_alpha(
        cls,
        dim: int,
        alpha: float,
        *,
        rho_range: tuple[float, float] = (0.5, 1.0),
        seed: int = 0,
    ) -> "BlockCorrelationModel":
        """The section-6.2 recipe: ``alpha`` fraction of signal pairs with
        strengths uniform in ``rho_range`` (paper: (0.5, 1))."""
        group_size, num_groups = plan_group_layout(dim, alpha)
        rng = np.random.default_rng(seed)
        lo, hi = rho_range
        rhos = rng.uniform(lo, min(hi, 1.0 - 1e-9), size=num_groups)
        return cls(
            dim=dim,
            group_size=group_size,
            num_groups=num_groups,
            rhos=rhos,
            seed=seed + 1,
        )

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` i.i.d. samples, shape ``(n, dim)``, unit variances."""
        rng = rng or self._rng
        data = rng.standard_normal((n, self.dim))
        g, m = self.group_size, self.num_groups
        if m:
            factors = rng.standard_normal((n, m))
            block = data[:, : m * g].reshape(n, m, g)
            sq_rho = np.sqrt(self.rhos)
            block *= np.sqrt(1.0 - self.rhos)[None, :, None]
            block += factors[:, :, None] * sq_rho[None, :, None]
            data[:, : m * g] = block.reshape(n, m * g)
        return data

    # ------------------------------------------------------------------
    def true_correlation(self) -> np.ndarray:
        """The exact population correlation matrix."""
        corr = np.eye(self.dim)
        g = self.group_size
        for grp in range(self.num_groups):
            sl = slice(grp * g, (grp + 1) * g)
            corr[sl, sl] = self.rhos[grp]
            np.fill_diagonal(corr[sl, sl], 1.0)
        return corr

    def signal_pairs(self) -> np.ndarray:
        """Flat keys of all true signal pairs (intra-block pairs)."""
        keys = []
        g = self.group_size
        for grp in range(self.num_groups):
            members = np.arange(grp * g, (grp + 1) * g, dtype=np.int64)
            rows, cols = np.triu_indices(g, k=1)
            keys.append(pair_to_index(members[rows], members[cols], self.dim))
        if not keys:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(keys)

    @property
    def num_signal_pairs(self) -> int:
        return self.num_groups * self.group_size * (self.group_size - 1) // 2

    @property
    def alpha(self) -> float:
        """Realised signal-pair fraction."""
        return self.num_signal_pairs / num_pairs(self.dim)

    @property
    def signal_strength(self) -> float:
        """Lower bound ``u`` of the signal correlations (section 7.2)."""
        return float(self.rhos.min()) if self.num_groups else 0.0
