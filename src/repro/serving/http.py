"""Stdlib-only HTTP front end for the serving query engine.

A :class:`ServingHTTPServer` (``http.server.ThreadingHTTPServer``) exposes
a JSON API over a :class:`~repro.serving.QueryEngine`,
:class:`~repro.serving.SketchSnapshot` or — for the full concurrent
ingest/serve loop — a :class:`~repro.serving.ServingEstimator`:

========================  ====================================================
``GET  /health``          liveness + degradation probe (see below)
``GET  /stats``           engine/cache/serving/HTTP counters
``GET  /metrics``         Prometheus text exposition of the whole stack
``GET  /pair?i=&j=``      one pair's estimate
``GET  /neighbors?i=&k=`` feature ``i``'s best candidate partners
``GET  /top?k=``          the ``k`` best indexed pairs
``GET  /above?threshold=&limit=``  thresholded range query (open-world
                          on hierarchical snapshots — see below)
``POST /query``           batched pairs/keys (single-gather planned)
``POST /ingest``          sparse samples into the write side (serving only)
``POST /refresh``         snapshot + atomic swap (serving only)
========================  ====================================================

Requests run in per-connection threads and reads are **not** serialized:
snapshot swaps are atomic reference rebinds, the engine's LRU cache is
thread-safe, and write routes (``/ingest``, ``/refresh``) serialize on the
serving estimator's own write lock — so a slow write never stalls reads.
JSON floats round-trip exactly (``repr`` shortest-form), so HTTP answers
are bit-identical to in-process queries.

Ranked endpoints (``/top``, ``/neighbors``, ``/above``) order and
threshold by **rank**: ``|estimate|`` on two-sided snapshots, the signed
estimate otherwise — the returned ``estimates`` stay signed either way.
Bad parameters (negative ``k``/``limit``, NaN thresholds, inverted
ranges) are 400s, and every list response is bounded by the server's
``max_response_pairs`` with a ``truncated`` flag — a low threshold can
no longer serialize an entire index into one body.  On a snapshot backed
by a :class:`~repro.sketch.HierarchicalCountSketch`, ``/above`` answers
over the full pair space by sketch descent even with no materialized
index (see ``SketchSnapshot.pairs_above``).

Degradation model
-----------------
When the server fronts a :class:`ServingEstimator`, ``GET /health``
returns the estimator's full degradation probe: ``status`` flips to
``"degraded"`` when the last refresh failed or the ingest circuit
breaker is open, and the payload carries ``stale_samples``,
``stale_seconds``, ``refresh_failures``, ``last_refresh_error``,
``breaker`` and (for a durable write side) ``wal_lag`` — reads keep
being answered from the last good snapshot throughout.  The server
applies **admission control**: at most ``max_inflight`` requests run
concurrently, and excess load is shed with ``503`` +  a ``Retry-After``
header instead of queueing unboundedly (``/health`` bypasses the gate so
probes still answer under overload).  An open ingest circuit breaker
surfaces as ``503`` + ``Retry-After`` on ``POST /ingest``.

:class:`ServingClient` is the matching ``urllib``-based client; it
applies socket timeouts to every call and retries **idempotent**
requests (all GETs and ``POST /query``) on connection failures and 503s
with bounded exponential backoff — ``POST /ingest`` and
``POST /refresh`` are never retried, so a lost response cannot double
apply a batch.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.durability.breaker import CircuitOpenError
from repro.obs.metrics import MetricsRegistry, render_exposition
from repro.serving.engine import QueryEngine
from repro.serving.live import ServingEstimator
from repro.serving.snapshot import SketchSnapshot

__all__ = ["ServingHTTPServer", "ServingClient", "serve_in_background"]

#: Content type of the ``/metrics`` body (Prometheus text format 0.0.4).
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _TextResponse:
    """A route result rendered verbatim instead of as JSON (``/metrics``)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str, content_type: str = "text/plain"):
        self.body = body
        self.content_type = content_type


class _HTTPError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


#: Sentinel for required query parameters (see ``_Handler._param``).
_REQUIRED = object()

#: Routes exempt from admission control: liveness probes and metric
#: scrapes must answer while the server is saturated.
_UNGATED_ROUTES = frozenset({("GET", "/health"), ("GET", "/metrics")})


class _Handler(BaseHTTPRequestHandler):
    # The handler is stateless; everything lives on self.server.
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test/bench output clean

    # ------------------------------------------------------------------
    def _drain_body(self) -> None:
        """Consume any unread request body before replying.

        An error reply sent while body bytes sit unread in the socket
        desyncs HTTP/1.1 keep-alive: the leftover bytes get parsed as the
        next request line.  ``_body()`` marks the body consumed; every
        reply path drains the remainder first.
        """
        remaining = self._body_remaining
        self._body_remaining = 0
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(
        self, payload, status: int = 200, headers: dict | None = None
    ) -> None:
        self._drain_body()
        self._last_status = status
        if isinstance(payload, _TextResponse):
            body = payload.body.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _param(self, query: dict, name: str, cast, default=_REQUIRED):
        # A sentinel (not None) marks required params, so optional params
        # can default to None and explicit 0 is never collapsed away.
        if name not in query:
            if default is _REQUIRED:
                raise _HTTPError(400, f"missing query parameter {name!r}")
            return default
        try:
            return cast(query[name][0])
        except (TypeError, ValueError):
            raise _HTTPError(400, f"bad value for parameter {name!r}")

    def _body(self) -> dict:
        length = self._body_remaining
        if length <= 0:
            raise _HTTPError(400, "JSON body required")
        self._body_remaining = 0
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError:
            raise _HTTPError(400, "invalid JSON body")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "JSON body must be an object")
        return payload

    def _dispatch(self, method: str) -> None:
        server: "ServingHTTPServer" = self.server  # type: ignore[assignment]
        parsed = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        self._body_remaining = int(self.headers.get("Content-Length") or 0)
        self._last_status = 0
        route_key = (method, parsed.path)
        # Admission control: shed excess load with 503 + Retry-After
        # instead of queueing unboundedly.  /health and /metrics bypass
        # the gate — liveness probes and metric scrapes must keep
        # answering while the server is saturated (that is precisely when
        # they matter most).
        gated = route_key not in _UNGATED_ROUTES
        if gated and not server._admit():
            self._reply(
                {"error": "server saturated; retry later"},
                status=503,
                headers={"Retry-After": server._retry_after_header()},
            )
            route = parsed.path if route_key in server.routes else "other"
            server._count_request(method, route, self._last_status)
            return
        # Known routes get their own latency series; everything else is
        # pooled under "other" so junk paths cannot explode cardinality.
        hist = server._route_hists.get(route_key, server._other_hist)
        server._inflight.inc()
        started = time.perf_counter()
        try:
            handler = server.routes.get(route_key)
            if handler is None:
                raise _HTTPError(404, f"no route {method} {parsed.path}")
            self._reply(handler(server, query, self))
        except _HTTPError as exc:
            self._reply({"error": str(exc)}, status=exc.status)
        except CircuitOpenError as exc:
            # The ingest circuit breaker is open: tell the client when the
            # half-open probe becomes available.
            self._reply(
                {"error": str(exc)},
                status=503,
                headers={"Retry-After": max(1, math.ceil(exc.retry_after))},
            )
        except ValueError as exc:
            # The query layers validate inputs with ValueError (bad pair
            # indices, out-of-range keys) — and the durability tier's
            # IntegrityError subclasses it — those are client errors.
            self._reply({"error": str(exc)}, status=400)
        except Exception as exc:  # noqa: BLE001 - must answer, not hang up
            # A handler bug must surface as a 500 JSON error, not a closed
            # connection with no response.
            self._reply(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
        finally:
            server._inflight.dec()
            hist.observe(time.perf_counter() - started)
            route = parsed.path if route_key in server.routes else "other"
            server._count_request(method, route, self._last_status)
            if gated:
                server._release()

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._dispatch("POST")


# ----------------------------------------------------------------------
# Route implementations (module-level so the table reads declaratively)
# ----------------------------------------------------------------------
def _route_health(server, query, handler) -> dict:
    # Side-effect-free liveness: must not trigger the serving estimator's
    # auto-snapshot build (load-balancer probes expect instant answers).
    # With a ServingEstimator target this is the full degradation probe
    # (status/degraded/stale_samples/stale_seconds/refresh_failures/
    # last_refresh_error/breaker/wal_lag); a frozen snapshot is always ok.
    if server.serving is not None:
        payload = server.serving.health()
        payload["rejected_requests"] = server.rejected_requests
        return payload
    return {
        "status": "ok",
        "snapshot_id": server.engine.snapshot.snapshot_id,
        "writable": False,
        "rejected_requests": server.rejected_requests,
    }


def _route_stats(server, query, handler) -> dict:
    # The HTTP block reconciles /stats with /health: rejected_requests and
    # the per-route request tallies are views over the same registry
    # counters the /metrics exposition serves — the numbers cannot
    # disagree between surfaces.
    if server.serving is not None:
        payload = server.serving.stats()
    else:
        payload = server.engine.stats()
    payload["http"] = server.http_stats()
    return payload


def _route_metrics(server, query, handler) -> _TextResponse:
    """Prometheus text exposition over every registry in the stack."""
    return _TextResponse(
        render_exposition(server._metric_registries()),
        content_type=_METRICS_CONTENT_TYPE,
    )


def _route_pair(server, query, handler) -> dict:
    engine = server.engine
    i = handler._param(query, "i", int)
    j = handler._param(query, "j", int)
    return {
        "i": i,
        "j": j,
        "estimate": engine.query_pair(i, j),
        "snapshot_id": engine.snapshot.snapshot_id,
    }


def _route_neighbors(server, query, handler) -> dict:
    """Feature ``i``'s best candidate partners, rank-desc.

    Rank is ``|estimate|`` on two-sided snapshots, the signed estimate
    otherwise.  Negative ``k`` is a 400; responses are capped at the
    server's ``max_response_pairs`` (``truncated: true`` flags a cut).
    """
    engine = server.engine
    i = handler._param(query, "i", int)
    k = handler._param(query, "k", int, default=10)
    effective, cap = server._capped(k)
    partners, estimates = engine.top_neighbors(i, effective)
    return {
        "i": i,
        "partners": partners.tolist(),
        "estimates": estimates.tolist(),
        "truncated": cap is not None and k > cap and partners.size == cap,
        "snapshot_id": engine.snapshot.snapshot_id,
    }


def _route_top(server, query, handler) -> dict:
    """The ``k`` best indexed pairs, rank-desc.

    Rank is ``|estimate|`` on two-sided snapshots, the signed estimate
    otherwise.  Negative ``k`` is a 400; responses are capped at the
    server's ``max_response_pairs`` (``truncated: true`` flags a cut).
    """
    engine = server.engine
    k = handler._param(query, "k", int, default=10)
    effective, cap = server._capped(k)
    i, j, estimates = engine.top_pairs(effective)
    return {
        "i": i.tolist(),
        "j": j.tolist(),
        "estimates": estimates.tolist(),
        "truncated": cap is not None and k > cap and i.size == cap,
        "snapshot_id": engine.snapshot.snapshot_id,
    }


def _route_above(server, query, handler) -> dict:
    """All pairs with rank ``>= threshold``, rank-desc.

    Rank is ``|estimate|`` on two-sided snapshots, the signed estimate
    otherwise.  NaN thresholds and negative limits are 400s.  The response
    is always bounded: at most ``min(limit, max_response_pairs)`` rows are
    serialized, with ``truncated: true`` when the cap cut real rows —
    before the cap, a low threshold with no ``limit`` would serialize the
    whole index into one JSON body.
    """
    engine = server.engine
    threshold = handler._param(query, "threshold", float)
    limit = handler._param(query, "limit", int, default=None)
    if limit is not None and limit < 0:
        raise _HTTPError(400, f"limit must be >= 0, got {limit}")
    cap = server.max_response_pairs if server.max_response_pairs > 0 else None
    truncated = False
    if cap is not None and (limit is None or limit > cap):
        # Ask for one row beyond the cap: its presence proves a cut
        # without materializing the unbounded tail.
        i, j, estimates = engine.pairs_above(threshold, limit=cap + 1)
        truncated = i.size > cap
        i, j, estimates = i[:cap], j[:cap], estimates[:cap]
    else:
        i, j, estimates = engine.pairs_above(threshold, limit=limit)
    return {
        "i": i.tolist(),
        "j": j.tolist(),
        "estimates": estimates.tolist(),
        "truncated": truncated,
        "snapshot_id": engine.snapshot.snapshot_id,
    }


def _as_index_array(raw, what: str) -> np.ndarray:
    """Coerce a JSON field to an int64 array, as a *client* error on junk."""
    try:
        return np.asarray(raw, dtype=np.int64)
    except (TypeError, ValueError):
        raise _HTTPError(400, f"{what} must be a flat list of integers")


def _route_query(server, query, handler) -> dict:
    engine = server.engine
    body = handler._body()
    if "keys" in body:
        estimates = engine.query_keys(_as_index_array(body["keys"], "'keys'"))
    elif "i" in body and "j" in body:
        estimates = engine.query_pairs(
            _as_index_array(body["i"], "'i'"),
            _as_index_array(body["j"], "'j'"),
        )
    else:
        raise _HTTPError(400, "body must contain 'keys' or both 'i' and 'j'")
    return {
        "estimates": estimates.tolist(),
        "snapshot_id": engine.snapshot.snapshot_id,
    }


def _route_ingest(server, query, handler) -> dict:
    serving = server.require_serving()
    body = handler._body()
    raw = body.get("samples")
    if not isinstance(raw, list):
        raise _HTTPError(400, "body must contain 'samples': [[indices, values], ...]")
    try:
        samples = [
            (np.asarray(idx, dtype=np.int64), np.asarray(val, dtype=np.float64))
            for idx, val in raw
        ]
    except (TypeError, ValueError):
        raise _HTTPError(
            400, "each sample must be an [indices, values] pair of flat lists"
        )
    serving.ingest_sparse(samples)
    return {
        "ingested": len(samples),
        "write_samples_seen": serving.sketcher.samples_seen,
    }


def _route_refresh(server, query, handler) -> dict:
    serving = server.require_serving()
    snapshot = serving.refresh()
    return {
        "snapshot_id": snapshot.snapshot_id,
        "swap_count": serving.swap_count,
        "swap_seconds": serving.last_swap_seconds,
    }


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded JSON front end over an engine, snapshot or serving estimator.

    Parameters
    ----------
    target:
        A :class:`ServingEstimator` (write endpoints enabled), a
        :class:`QueryEngine`, or a bare :class:`SketchSnapshot` (wrapped in
        a default engine).
    address:
        ``(host, port)``; port 0 picks a free ephemeral port — read it back
        from :attr:`port`.
    max_inflight:
        Admission-control bound: at most this many requests execute
        concurrently; excess requests are shed with ``503`` +
        ``Retry-After`` (``GET /health`` is exempt).  ``0`` disables the
        gate.
    retry_after:
        The ``Retry-After`` value (seconds) sent with admission-control
        rejections.
    max_response_pairs:
        Hard bound on the rows any list endpoint (``/top``, ``/neighbors``,
        ``/above``) serializes into one JSON body.  Requests asking for
        more (or ``/above`` with no ``limit`` matching more) get the first
        ``max_response_pairs`` rows plus ``"truncated": true`` — page with
        ``limit`` + a tighter threshold for the rest.  ``0`` disables the
        cap (trusted in-process clients only).
    registry:
        The server's own :class:`repro.obs.MetricsRegistry` for HTTP-layer
        instruments (per-route latency histograms, the in-flight gauge,
        the admission-rejection counter); a fresh one when omitted.
        ``GET /metrics`` renders it merged with the target's registries.
    """

    daemon_threads = True
    allow_reuse_address = True

    routes = {
        ("GET", "/health"): _route_health,
        ("GET", "/stats"): _route_stats,
        ("GET", "/metrics"): _route_metrics,
        ("GET", "/pair"): _route_pair,
        ("GET", "/neighbors"): _route_neighbors,
        ("GET", "/top"): _route_top,
        ("GET", "/above"): _route_above,
        ("POST", "/query"): _route_query,
        ("POST", "/ingest"): _route_ingest,
        ("POST", "/refresh"): _route_refresh,
    }

    def __init__(
        self,
        target,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_inflight: int = 64,
        retry_after: float = 1.0,
        max_response_pairs: int = 10_000,
        registry: MetricsRegistry | None = None,
    ):
        if isinstance(target, SketchSnapshot):
            target = QueryEngine(target)
        if isinstance(target, ServingEstimator):
            self.serving: ServingEstimator | None = target
            self._fixed_engine: QueryEngine | None = None
        elif isinstance(target, QueryEngine):
            self.serving = None
            self._fixed_engine = target
        else:
            raise TypeError(
                "target must be a ServingEstimator, QueryEngine or "
                f"SketchSnapshot, got {type(target).__name__}"
            )
        self.max_inflight = int(max_inflight)
        self.retry_after = float(retry_after)
        if int(max_response_pairs) < 0:
            raise ValueError(
                f"max_response_pairs must be >= 0, got {max_response_pairs}"
            )
        self.max_response_pairs = int(max_response_pairs)
        self._admission = (
            threading.BoundedSemaphore(self.max_inflight)
            if self.max_inflight > 0
            else None
        )
        self._serve_thread: threading.Thread | None = None
        # The server's own registry holds the HTTP-layer instruments; the
        # /metrics exposition renders it merged with the target stack's
        # registries (serving estimator / engine / durable write side).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._rejected_total = self.registry.counter(
            "repro_http_rejected_total",
            "requests shed by admission control",
        )
        self._inflight = self.registry.gauge(
            "repro_http_inflight", "requests currently executing"
        )
        self._route_hists = {
            (method, path): self.registry.histogram(
                "repro_http_request_seconds",
                "request latency by route",
                labels={"route": f"{method} {path}"},
            )
            for method, path in self.routes
        }
        self._other_hist = self.registry.histogram(
            "repro_http_request_seconds",
            "request latency by route",
            labels={"route": "other"},
        )
        super().__init__(address, _Handler)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        if self._admission is None:
            return True
        if self._admission.acquire(blocking=False):
            return True
        self._rejected_total.inc()
        return False

    def _release(self) -> None:
        if self._admission is not None:
            self._admission.release()

    @property
    def rejected_requests(self) -> int:
        """Requests shed by admission control (view over the registry
        counter — /health, /stats and /metrics all read this one value)."""
        return int(self._rejected_total.value)

    def _retry_after_header(self) -> int:
        return max(1, math.ceil(self.retry_after))

    def _count_request(self, method: str, route: str, status: int) -> None:
        self.registry.counter(
            "repro_http_requests_total",
            "requests answered by route and status code",
            labels={"route": f"{method} {route}", "code": str(status)},
        ).inc()

    # ------------------------------------------------------------------
    # Telemetry surfaces
    # ------------------------------------------------------------------
    def _metric_registries(self) -> list[MetricsRegistry]:
        """Every registry in this stack, HTTP layer first.

        The serving estimator's registry covers the swapped-in engines,
        the breaker and (for a durable write side) the WAL/checkpoint
        instruments, because those components share it at construction; a
        fixed engine contributes its own (a NullRegistry renders empty).
        """
        registries = [self.registry]
        if self.serving is not None:
            # Side-effect-free: the estimator's registry is reused by every
            # swapped engine, so there is no need to touch the `engine`
            # property (which would auto-build a snapshot on first access).
            if self.serving.registry not in registries:
                registries.append(self.serving.registry)
        elif (
            self._fixed_engine is not None
            and self._fixed_engine.registry not in registries
        ):
            registries.append(self._fixed_engine.registry)
        return registries

    def http_stats(self) -> dict:
        """JSON view of the HTTP-layer instruments (the /stats ``http``
        block): per-route request counts and latency summaries, in-flight
        and rejection tallies."""
        requests: dict[str, dict] = {}
        for instrument in self.registry.instruments():
            if instrument.name != "repro_http_requests_total":
                continue
            labels = dict(instrument.labels)
            route = labels.get("route", "other")
            by_code = requests.setdefault(route, {})
            by_code[labels.get("code", "?")] = int(instrument.value)
        return {
            "rejected_requests": self.rejected_requests,
            "inflight": int(self._inflight.value),
            "max_inflight": self.max_inflight,
            "requests": requests,
            "latency": {
                f"{method} {path}": hist.stats()
                for (method, path), hist in self._route_hists.items()
                if hist.count
            },
        }

    def _capped(self, k: int) -> tuple[int, int | None]:
        """``(effective_k, cap)`` under ``max_response_pairs``.

        Negative ``k`` passes through untouched so the query layer raises
        its own ValueError (mapped to a 400) instead of the cap hiding it.
        """
        cap = self.max_response_pairs if self.max_response_pairs > 0 else None
        if cap is None or k < 0:
            return k, cap
        return min(k, cap), cap

    def stop(self, timeout: float | None = 5.0) -> None:
        """Shut down, join the background serve thread (if any), close.

        Bounded: ``timeout`` caps the join so a hung in-flight handler
        cannot wedge interpreter shutdown (threads are daemonic anyway).
        """
        self.shutdown()
        thread = self._serve_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)
        self.server_close()

    @property
    def engine(self) -> QueryEngine:
        if self.serving is not None:
            return self.serving.engine
        return self._fixed_engine

    def require_serving(self) -> ServingEstimator:
        if self.serving is None:
            raise _HTTPError(
                405, "this server fronts a frozen snapshot; ingest/refresh "
                "need a ServingEstimator target"
            )
        return self.serving

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_in_background(
    target, address: tuple[str, int] = ("127.0.0.1", 0), **server_options
) -> tuple[ServingHTTPServer, threading.Thread]:
    """Start a server on a daemon thread.

    Stop it with ``server.stop(timeout)`` (bounded shutdown + join) or the
    legacy ``server.shutdown()``.  Extra keyword arguments
    (``max_inflight``, ``retry_after``, ``max_response_pairs``) pass
    through to :class:`ServingHTTPServer`.
    """
    server = ServingHTTPServer(target, address, **server_options)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serving-http", daemon=True
    )
    server._serve_thread = thread
    thread.start()
    return server, thread


class ServingClient:
    """``urllib``-based client with timeouts, retries and backoff.

    All methods raise :class:`urllib.error.HTTPError` on non-2xx responses
    (the JSON error body is attached by the stdlib).

    Every request carries a socket ``timeout`` — a hung server surfaces as
    a timely error, never a stuck client thread.  **Idempotent** requests
    (all GETs and ``POST /query`` — pure reads whose replay cannot change
    server state) are retried up to ``retries`` times on connection
    failures, timeouts and 503s, sleeping a bounded exponential backoff
    with jitter between attempts and honouring the server's
    ``Retry-After`` (capped at ``backoff_max``).  ``POST /ingest`` and
    ``POST /refresh`` are **never retried**: a response lost after the
    server applied the write would make a retry double-ingest or
    double-swap — the caller decides, with batch counters in hand.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8321``.
    timeout:
        Per-request socket timeout (seconds).
    retries:
        Extra attempts for idempotent requests (0 disables retrying).
    backoff / backoff_max:
        Base and cap of the exponential backoff (seconds); actual sleeps
        are jittered uniformly in ``[backoff/2, backoff] * 2**attempt``.
    opener / sleep_fn / seed:
        Injection points for tests: the ``urlopen``-compatible callable,
        the sleep function, and the jitter RNG seed.
    """

    #: HTTP statuses worth retrying for idempotent requests — overload or
    #: open-breaker shedding, by construction transient.
    retry_statuses = frozenset({503})

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.1,
        backoff_max: float = 2.0,
        opener=urllib.request.urlopen,
        sleep_fn=time.sleep,
        seed: int | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_max = float(backoff_max)
        self._opener = opener
        self._sleep = sleep_fn
        self._rng = random.Random(seed)
        self.retried_requests = 0

    # ------------------------------------------------------------------
    def _backoff_delay(self, attempt: int, retry_after: float | None) -> float:
        delay = min(self.backoff_max, self.backoff * (2.0**attempt))
        delay *= self._rng.uniform(0.5, 1.0)  # jitter: desynchronize clients
        if retry_after is not None:
            # Honour the server's hint, but never beyond our own cap.
            delay = min(max(delay, retry_after), self.backoff_max)
        return delay

    def _request(self, request, *, idempotent: bool, parse_json: bool = True):
        attempts = 1 + (self.retries if idempotent else 0)
        for attempt in range(attempts):
            last = attempt == attempts - 1
            try:
                with self._opener(request, timeout=self.timeout) as response:
                    raw = response.read()
                    return json.loads(raw) if parse_json else raw.decode("utf-8")
            except urllib.error.HTTPError as exc:
                # Subclasses URLError — must be caught first.  Non-retryable
                # statuses (4xx, 500) propagate immediately.
                if last or int(exc.code) not in self.retry_statuses:
                    raise
                try:
                    retry_after = float(exc.headers.get("Retry-After"))
                except (TypeError, ValueError):
                    retry_after = None
                exc.close()
            except (urllib.error.URLError, OSError):
                # Dropped connection, refused socket, timeout.
                if last:
                    raise
                retry_after = None
            self.retried_requests += 1
            self._sleep(self._backoff_delay(attempt, retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def _get(self, path: str, **params) -> dict:
        query = urllib.parse.urlencode(
            {k: v for k, v in params.items() if v is not None}
        )
        url = f"{self.base_url}{path}" + (f"?{query}" if query else "")
        return self._request(url, idempotent=True)

    def _post(self, path: str, payload: dict, *, idempotent: bool = False) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request, idempotent=idempotent)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._get("/health")

    def stats(self) -> dict:
        """The /stats payload — includes the server's ``http`` block
        (per-route request counts, latency summaries, rejected_requests),
        so HTTP-layer telemetry is visible without a Prometheus scrape."""
        return self._get("/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        return self._request(
            f"{self.base_url}/metrics", idempotent=True, parse_json=False
        )

    def pair(self, i: int, j: int) -> float:
        return float(self._get("/pair", i=int(i), j=int(j))["estimate"])

    def query_pairs(self, i, j) -> np.ndarray:
        payload = {
            "i": np.asarray(i, dtype=np.int64).tolist(),
            "j": np.asarray(j, dtype=np.int64).tolist(),
        }
        return np.asarray(
            self._post("/query", payload, idempotent=True)["estimates"]
        )

    def query_keys(self, keys) -> np.ndarray:
        payload = {"keys": np.asarray(keys, dtype=np.int64).tolist()}
        return np.asarray(
            self._post("/query", payload, idempotent=True)["estimates"]
        )

    def neighbors(self, i: int, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        data = self._get("/neighbors", i=int(i), k=int(k))
        return (
            np.asarray(data["partners"], dtype=np.int64),
            np.asarray(data["estimates"]),
        )

    def top(self, k: int = 10) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        data = self._get("/top", k=int(k))
        return (
            np.asarray(data["i"], dtype=np.int64),
            np.asarray(data["j"], dtype=np.int64),
            np.asarray(data["estimates"]),
        )

    def above(
        self, threshold: float, limit: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        data = self._get("/above", threshold=float(threshold), limit=limit)
        return (
            np.asarray(data["i"], dtype=np.int64),
            np.asarray(data["j"], dtype=np.int64),
            np.asarray(data["estimates"]),
        )

    def ingest(self, samples) -> dict:
        payload = {
            "samples": [
                [
                    np.asarray(idx, dtype=np.int64).tolist(),
                    np.asarray(val, dtype=np.float64).tolist(),
                ]
                for idx, val in samples
            ]
        }
        return self._post("/ingest", payload)

    def refresh(self) -> dict:
        return self._post("/refresh", {})
