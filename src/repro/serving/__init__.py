"""Serving layer: the read path over fitted sketches.

The paper's premise is that an ASCS sketch is a tiny queryable stand-in
for a trillion-entry covariance matrix.  This package is the subsystem
that does the querying:

* :mod:`repro.serving.snapshot` — :class:`SketchSnapshot`, an immutable
  query-optimized frozen view (read-only counters, materialized top-pair
  index, per-feature neighbor index) constructible from a
  ``SketchResult``, a ``CovarianceSketcher`` or merged ``ShardResult``s;
  atomic ``.npz`` persistence and :class:`CheckpointManager` retention;
* :mod:`repro.serving.engine` — :class:`QueryEngine`, the vectorized
  single-gather query planner with an LRU result cache
  (:mod:`repro.serving.cache`);
* :mod:`repro.serving.live` — :class:`ServingEstimator`, double-buffered
  concurrent ingest/serve with atomic snapshot swaps;
* :mod:`repro.serving.http` — a stdlib ``ThreadingHTTPServer`` JSON front
  end and the matching :class:`ServingClient`.

Quick start::

    result = sketch_correlations(data, memory_floats=20_000, top_k=20)
    snap = result.snapshot()                  # freeze the read path
    engine = QueryEngine(snap)                # cache + gather planner
    engine.query_pair(3, 17)                  # == estimator.estimate, exactly
    engine.top_neighbors(3, k=5)
    server, _ = serve_in_background(engine)   # JSON over HTTP
    ServingClient(server.url).pair(3, 17)

See ``PERF.md`` ("Serving") for measured throughput and
``benchmarks/bench_serving.py`` for the load generator.
"""

from repro.serving.cache import CacheStats, LRUCache
from repro.serving.engine import QueryEngine
from repro.serving.http import ServingClient, ServingHTTPServer, serve_in_background
from repro.serving.live import ServingEstimator
from repro.serving.snapshot import CheckpointManager, SketchSnapshot

__all__ = [
    "CacheStats",
    "CheckpointManager",
    "LRUCache",
    "QueryEngine",
    "ServingClient",
    "ServingEstimator",
    "ServingHTTPServer",
    "SketchSnapshot",
    "serve_in_background",
]
