"""LRU result cache for the serving query engine.

Caches single-key estimates (the unit every query shape decomposes into),
with hit/miss/eviction counters.  Values are stored verbatim, so a cache
hit is bit-identical to the gather it replaced — the engine's correctness
tests assert exactly that.  Plain dict + move-to-end (dicts are ordered)
behind a small mutex: concurrent readers share one engine in the
double-buffered serving estimator, and an unguarded evict/refresh race
could otherwise drop a key mid-``del``.  The lock is uncontended in the
single-reader case and costs ~0.1us against the ~20us a gather takes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["LRUCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters (``/stats`` reports these)."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded, thread-safe key -> float cache with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables the cache (every ``get``
        misses, ``put`` is a no-op) — the engine's cache-off mode.
    """

    __slots__ = ("capacity", "_data", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._data: dict[int, float] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int) -> float | None:
        """The cached value, refreshed to most-recently-used; ``None`` on miss."""
        with self._lock:
            data = self._data
            value = data.pop(key, None)
            if value is None:
                self.misses += 1
                return None
            data[key] = value  # re-insert = move to most-recent end
            self.hits += 1
            return value

    def put(self, key: int, value: float) -> None:
        """Insert (or refresh) an entry, evicting the LRU one at capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            data = self._data
            if key in data:
                del data[key]
            elif len(data) >= self.capacity:
                # Oldest entry = first in insertion order.
                del data[next(iter(data))]
                self.evictions += 1
            data[key] = value

    def get_many(self, keys: list) -> list:
        """Batched :meth:`get`: one lock acquisition for the whole list.

        Returns a value-or-``None`` per key, counting hits/misses exactly
        as the per-key path would — this is what keeps the engine's
        batched planner from paying a lock round-trip per key.
        """
        out = []
        with self._lock:
            data = self._data
            for key in keys:
                value = data.pop(key, None)
                if value is None:
                    self.misses += 1
                else:
                    data[key] = value
                    self.hits += 1
                out.append(value)
        return out

    def put_many(self, items) -> None:
        """Batched :meth:`put` of ``(key, value)`` pairs under one lock."""
        if self.capacity == 0:
            return
        with self._lock:
            data = self._data
            for key, value in items:
                if key in data:
                    del data[key]
                elif len(data) >= self.capacity:
                    del data[next(iter(data))]
                    self.evictions += 1
                data[key] = value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._data),
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
            )
