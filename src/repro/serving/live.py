"""Double-buffered concurrent ingest/serve estimator.

:class:`ServingEstimator` pairs a live write-side
:class:`repro.covariance.CovarianceSketcher` with a read-side
:class:`~repro.serving.QueryEngine` over an immutable snapshot.  Ingestion
keeps mutating the write side under a lock; :meth:`refresh` clones the
write-side state (holding the lock only for the copy), builds the
query-optimized snapshot and engine off-line, and **atomically swaps** the
engine reference.  Readers capture the engine reference once per query, so
every answer comes entirely from one frozen snapshot — a query can never
observe a half-updated sketch, and concurrent swaps only change which
complete snapshot the *next* query sees.

The swap is a single attribute rebind (atomic under CPython); readers never
block writers and writers never block readers except for the brief
state-clone inside :meth:`refresh`.
"""

from __future__ import annotations

import logging
import threading
import time

import numpy as np

from repro.covariance.pipeline import CovarianceSketcher
from repro.durability.breaker import CircuitBreaker
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.serving.engine import QueryEngine
from repro.serving.snapshot import SketchSnapshot

__all__ = ["ServingEstimator"]

logger = logging.getLogger(__name__)


class ServingEstimator:
    """Serve covariance queries while the underlying stream keeps flowing.

    Parameters
    ----------
    sketcher:
        The write-side pipeline (any fitted or fresh
        :class:`CovarianceSketcher`).  Build one from a
        :class:`repro.distributed.ShardSpec` with :meth:`from_spec`.
    top_index:
        Materialized top-pair index size per snapshot.
    scan:
        Index build strategy (see :meth:`SketchSnapshot.from_sketcher`).
    cache_size:
        LRU result-cache capacity of each swapped-in engine (the cache is
        per-snapshot: stale estimates can never outlive their snapshot).
    refresh_every:
        Auto-refresh after this many ingested samples (0 = manual
        :meth:`refresh` only).
    breaker:
        Ingest :class:`~repro.durability.CircuitBreaker` (a default one is
        built when omitted).  After ``failure_threshold`` consecutive
        ingest failures, further ingests are rejected instantly with
        :class:`~repro.durability.CircuitOpenError` (the HTTP layer maps
        it to 503 + ``Retry-After``) until the cooldown's half-open probe
        succeeds — a broken write path fails fast instead of stacking
        request threads behind the write lock.
    registry:
        The stack's :class:`repro.obs.MetricsRegistry`.  Defaults to the
        write side's own registry when it has one (a durable sketcher
        does, so WAL metrics share the exposition), else a fresh one.
        Every swapped-in engine and the default circuit breaker reuse it;
        ``swap_count`` / ``refresh_failures`` and the ``stats()`` /
        ``health()`` payloads are thin views over its instruments.

    Degradation model
    -----------------
    Reads are **stale-but-available**: the served snapshot only ever swaps
    on a *successful* refresh, so a failing or hung refresh leaves the
    last good snapshot serving.  A hung refresh cannot stall ingestion
    either — the auto-refresh trigger skips when a refresh is already in
    flight — and a *failing* auto-refresh marks the estimator
    :attr:`degraded` (with the error recorded) rather than failing the
    ingest that triggered it.  Staleness is observable: :meth:`stats` and
    :meth:`health` report ``stale_samples`` (write-side samples the served
    snapshot has not seen), ``stale_seconds``, the breaker state, and —
    for a durable write side (:class:`repro.durability.DurableSketcher`) —
    the WAL replay lag.

    Notes
    -----
    The write side may also be a streaming estimator from
    :mod:`repro.streaming`: a :class:`~repro.streaming.PaneRing`
    (sliding-window mode — each snapshot materialises the current window
    with one pane-merge pass; build with :meth:`windowed`) or a
    :class:`~repro.streaming.DecayingSketcher` (time-decayed mode).  Both
    are detected by duck typing and surface their ``window_span`` /
    ``decay`` metadata through :meth:`stats`, hence through the HTTP
    ``/stats`` route.
    """

    def __init__(
        self,
        sketcher: CovarianceSketcher,
        *,
        top_index: int = 1024,
        scan: bool | None = None,
        cache_size: int = 8192,
        refresh_every: int = 0,
        breaker: CircuitBreaker | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if refresh_every < 0:
            raise ValueError(f"refresh_every must be >= 0, got {refresh_every}")
        self.sketcher = sketcher
        self.top_index = int(top_index)
        self.scan = scan
        self.cache_size = int(cache_size)
        self.refresh_every = int(refresh_every)
        # One registry per serving stack: adopt the write side's (a durable
        # sketcher carries one so WAL/checkpoint metrics land in the same
        # exposition) or start fresh.  Engines built on every swap reuse it,
        # so latency histograms accumulate across snapshots.  Leaf write
        # sides (a bare PaneRing / DecayingSketcher) default to a no-op
        # registry — never adopt that, or the whole stack goes silent.
        if registry is None:
            adopted = getattr(sketcher, "registry", None)
            if not isinstance(adopted, NullRegistry):
                registry = adopted
        self.registry = registry if registry is not None else MetricsRegistry()
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(registry=self.registry)
        )
        self._write_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._engine: QueryEngine | None = None
        self._retired: list[QueryEngine] = []
        self.last_swap_seconds = 0.0
        self._samples_at_refresh = 0
        self._last_swap_monotonic: float | None = None
        self.last_refresh_error: str | None = None
        self._degraded = False
        # Streaming write sides (repro.streaming) are duck-typed: a windowed
        # ring exposes window_span, a decaying pipeline exposes decay.
        self._windowed = hasattr(sketcher, "window_span")
        self.last_window_span: int | None = None
        # Migration state (the autoscale loop): the served configuration is
        # versioned, and each committed migration bumps it.  ``probe`` and
        # ``autoscaler`` are attached by :meth:`autoscaled` (or manually);
        # both are optional — a plain serving stack never touches them.
        self.probe = None
        self.autoscaler = None
        self.config_version = 0
        self.migration_count = 0
        self.last_migration_seconds = 0.0
        self.last_migration_trigger: str | None = None
        self.last_migration_reason: str | None = None
        # Registry-backed counters are the single source of truth;
        # `swap_count` / `refresh_failures` stay available as properties so
        # stats()/health() (and existing callers) are thin views over them.
        reg = self.registry
        self._swaps_total = reg.counter(
            "repro_serving_swaps_total", "snapshot engine swaps installed"
        )
        self._refresh_failures_total = reg.counter(
            "repro_serving_refresh_failures_total",
            "failed snapshot refresh attempts",
        )
        self._swap_seconds = reg.histogram(
            "repro_serving_swap_seconds",
            "refresh duration: state clone + index build + engine swap",
        )
        self._ingest_seconds = reg.histogram(
            "repro_serving_ingest_seconds",
            "write-side ingest batch duration (lock wait included)",
        )
        self._migration_seconds = reg.histogram(
            "repro_serving_migration_seconds",
            "live migration duration: window replay + write-side swap",
        )
        reg.gauge_fn(
            "repro_serving_config_version",
            lambda: self.config_version,
            "served configuration version (bumped per committed migration)",
        )
        reg.gauge_fn(
            "repro_serving_stale_samples",
            lambda: self.stale_samples,
            "write-side samples the served snapshot has not seen",
        )
        reg.gauge_fn(
            "repro_serving_stale_seconds",
            lambda: (
                float("nan")
                if self.stale_seconds is None
                else self.stale_seconds
            ),
            "seconds since the served engine was swapped in",
        )
        reg.gauge_fn(
            "repro_serving_degraded",
            lambda: float(self._degraded or self.breaker.state != "closed"),
            "1 while serving stale after a failed refresh or open breaker",
        )
        reg.gauge_fn(
            "repro_serving_write_samples_seen",
            lambda: self.sketcher.samples_seen,
            "samples ingested into the write side",
        )
        reg.gauge_fn(
            "repro_serving_wal_lag",
            lambda: (
                float("nan")
                if getattr(self.sketcher, "wal_lag", None) is None
                else self.sketcher.wal_lag
            ),
            "WAL records past the last checkpoint (NaN when not durable)",
        )

    @classmethod
    def from_spec(cls, spec, **kwargs) -> "ServingEstimator":
        """Build around a fresh estimator from a :class:`ShardSpec`."""
        return cls(spec.build_sketcher(), **kwargs)

    @classmethod
    def windowed(
        cls, spec, *, num_panes: int, pane_samples: int, **kwargs
    ) -> "ServingEstimator":
        """Build a sliding-window serving estimator around a fresh
        :class:`~repro.streaming.PaneRing` (see :mod:`repro.streaming`)."""
        # Lazy import: repro.streaming builds on repro.distributed, which
        # sits beside (not under) the serving read path.
        from repro.streaming import PaneRing

        registry = kwargs.pop("registry", None)
        if registry is None:
            registry = MetricsRegistry()
        retain_raw = kwargs.pop("retain_raw", False)
        return cls(
            PaneRing(
                spec,
                num_panes=num_panes,
                pane_samples=pane_samples,
                registry=registry,
                retain_raw=retain_raw,
            ),
            registry=registry,
            **kwargs,
        )

    @classmethod
    def autoscaled(
        cls,
        spec,
        *,
        num_panes: int,
        pane_samples: int,
        probe=None,
        autoscale_options: dict | None = None,
        **kwargs,
    ) -> "ServingEstimator":
        """A windowed serving estimator that re-plans itself online.

        Builds :meth:`windowed` with the pane retention contract enabled
        (``retain_raw=True`` — the window's raw panes are kept so the
        sketch can be re-shaped without losing history), attaches
        ``probe`` (an :class:`repro.obs.AccuracyProbe`; one is built from
        the spec when omitted) and an :class:`repro.autoscale.AutoScaler`
        driving :meth:`migrate` from the probe's gauges.
        ``autoscale_options`` are passed to the
        :class:`~repro.autoscale.AutoScaler` constructor (``check_every``,
        ``cooldown``, trigger thresholds, ...).
        """
        from repro.autoscale import AutoScaler
        from repro.hashing.pairs import num_pairs
        from repro.obs.probe import AccuracyProbe

        est = cls.windowed(
            spec,
            num_panes=num_panes,
            pane_samples=pane_samples,
            retain_raw=True,
            **kwargs,
        )
        if probe is None:
            probe = AccuracyProbe(
                np.empty(0, dtype=np.int64),
                registry=est.registry,
                key_space=num_pairs(spec.dim),
                seed=spec.seed,
            )
        est.probe = probe
        est.autoscaler = AutoScaler(est, **(autoscale_options or {}))
        return est

    @classmethod
    def durable(cls, directory, spec=None, *, durable_options=None, **kwargs):
        """Build around a crash-safe :class:`repro.durability.DurableSketcher`.

        Opens (or creates) the durable directory — recovery, if needed,
        happens right here — and serves from it: every ingest is
        write-ahead logged and periodically checkpointed, and
        :meth:`stats` / :meth:`health` surface the WAL lag.
        ``durable_options`` are passed to the
        :class:`~repro.durability.DurableSketcher` constructor
        (``checkpoint_every``, ``num_panes``, ``fsync``, ...).
        """
        from repro.durability.durable import DurableSketcher

        return cls(
            DurableSketcher(directory, spec, **(durable_options or {})),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def ingest_sparse(self, samples) -> None:
        """Stream sparse ``(indices, values)`` samples into the write side.

        Guarded by the ingest circuit breaker: while the write path is
        failing repeatedly, calls are rejected instantly with
        :class:`~repro.durability.CircuitOpenError` instead of queueing on
        the write lock.
        """
        self.breaker.before_call()
        try:
            with self._ingest_seconds.time(), self._write_lock:
                self.sketcher.fit_sparse(iter(samples))
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        self._maybe_refresh()
        self._maybe_autoscale()

    def ingest_dense(self, batch: np.ndarray) -> None:
        """Stream a dense ``(n, d)`` batch into the write side."""
        self.breaker.before_call()
        try:
            with self._ingest_seconds.time(), self._write_lock:
                self.sketcher.fit_dense(np.atleast_2d(np.asarray(batch)))
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        self._maybe_refresh()
        self._maybe_autoscale()

    def _maybe_autoscale(self) -> None:
        """Give an attached :class:`repro.autoscale.AutoScaler` its tick.

        Runs after the ingest committed and outside every lock (the scaler
        re-enters through :meth:`migrate`, which takes the write lock
        itself).  Scaler errors must never fail the ingest that triggered
        them — they are recorded on the scaler's decision log instead.
        """
        scaler = self.autoscaler
        if scaler is not None:
            scaler.on_ingest()

    def _maybe_refresh(self) -> None:
        if self.refresh_every <= 0:
            return
        if (
            self.sketcher.samples_seen - self._samples_at_refresh
            < self.refresh_every
        ):
            return
        # Non-blocking: if a refresh is already in flight (or hung), the
        # ingest that tripped the threshold must not stall behind it — the
        # last good snapshot keeps serving and a later batch re-triggers.
        if not self._refresh_lock.acquire(blocking=False):
            return
        try:
            # Re-check under the lock: two ingesters crossing the threshold
            # together must not build two snapshots of the same state.
            if (
                self.sketcher.samples_seen - self._samples_at_refresh
                >= self.refresh_every
            ):
                try:
                    self._refresh_locked()
                except Exception as exc:  # noqa: BLE001 - stale-but-available
                    # The ingest itself succeeded; a broken refresh must
                    # not fail it.  Serve the last good snapshot, mark the
                    # estimator degraded, surface the reason in health().
                    self._note_refresh_failure(exc)
                    logger.warning(
                        "auto-refresh failed; serving stale snapshot (%s)", exc
                    )
        finally:
            self._refresh_lock.release()

    def _note_refresh_failure(self, exc: BaseException) -> None:
        self._refresh_failures_total.inc()
        self.last_refresh_error = f"{type(exc).__name__}: {exc}"
        self._degraded = True

    # ------------------------------------------------------------------
    # Snapshot / swap
    # ------------------------------------------------------------------
    def refresh(self) -> SketchSnapshot:
        """Snapshot the write side and atomically swap it into the read side.

        The write lock is held only while the estimator state is cloned;
        the index build and engine construction run on the clone.
        Refreshes themselves are serialized (a second caller waits, then
        builds from the then-current state), so an older snapshot can never
        be installed over a newer one.  Returns the snapshot that is now
        being served.  Unlike the auto-refresh path, a failure here
        propagates to the caller (after being recorded in
        :attr:`last_refresh_error`) — an explicit refresh request deserves
        an explicit answer.
        """
        with self._refresh_lock:
            try:
                return self._refresh_locked()
            except Exception as exc:
                self._note_refresh_failure(exc)
                raise

    def _refresh_locked(self) -> SketchSnapshot:
        started = time.perf_counter()
        snapshot = SketchSnapshot.from_sketcher(
            self.sketcher,
            top_index=self.top_index,
            scan=self.scan,
            lock=self._write_lock,
        )
        self.install(snapshot)
        # A successful swap ends any degradation episode.
        self._degraded = False
        self.last_refresh_error = None
        self.last_swap_seconds = time.perf_counter() - started
        self._swap_seconds.observe(self.last_swap_seconds)
        if self._windowed:
            # A windowed snapshot's samples_seen counts only the window's
            # contents, not the stream position — credit the ring's total
            # ingest position instead (samples landing during the off-lock
            # index build may be slightly over-credited; the next batch
            # re-triggers the refresh check either way).
            self._samples_at_refresh = self.sketcher.samples_seen
            # The snapshot's samples_seen *is* the span of the panes it was
            # built from; reading the live ring here instead could report a
            # span a concurrent ingester created after the extraction.
            self.last_window_span = int(snapshot.samples_seen)
        else:
            # Credit only what the snapshot actually contains: samples
            # ingested concurrently with the off-lock index build must
            # still count toward the next refresh_every window.
            self._samples_at_refresh = snapshot.samples_seen
        return snapshot

    def install(self, snapshot: SketchSnapshot) -> QueryEngine:
        """Serve a prebuilt snapshot (atomic engine swap).

        Lets a reducer push snapshots built elsewhere (e.g. from merged
        shard files) into a running server.  The previous engine is retired
        but kept so in-flight readers holding its reference finish safely,
        and so its cache stats remain inspectable.
        """
        engine = QueryEngine(
            snapshot, cache_size=self.cache_size, registry=self.registry
        )
        previous = self._engine
        self._engine = engine  # atomic rebind — the swap
        self._swaps_total.inc()
        self._last_swap_monotonic = time.monotonic()
        if previous is not None:
            self._retired.append(previous)
            del self._retired[:-4]  # bound the kept history
        return engine

    # ------------------------------------------------------------------
    # Migration (the autoscale write-side swap)
    # ------------------------------------------------------------------
    def _spec_for_plan(self, plan) -> "object":
        """Map a :class:`repro.sketch.CapacityPlan` onto the current spec."""
        from repro.distributed.shard import spec_with

        spec = self.sketcher.spec
        changes = {
            "num_tables": plan.num_tables,
            "num_buckets": plan.num_buckets,
            "storage": plan.storage,
            "quantum": plan.quantum,
        }
        if spec.method == "hcs":
            changes["levels"] = plan.levels
            changes["branching"] = plan.branching
        return spec_with(spec, **changes)

    def migrate(
        self,
        target,
        *,
        num_panes: int | None = None,
        trigger: str = "manual",
        reason: str = "",
    ) -> None:
        """Move the live write side to a new configuration, keeping history.

        ``target`` is a :class:`repro.distributed.ShardSpec` or a
        :class:`repro.sketch.CapacityPlan` (mapped onto the current spec's
        stream geometry).  The write side must support history-preserving
        re-sketching: a :class:`~repro.streaming.PaneRing` built with
        ``retain_raw=True`` (its :meth:`~repro.streaming.PaneRing.rebuild`
        replays the retained window into the new shape, bit-identical to a
        from-scratch fit) or a :class:`~repro.durability.DurableSketcher`
        wrapping one (its ``migrate`` additionally checkpoints the new side
        atomically, so a crash lands on exactly one configuration).

        Reads are never blocked: the current engine keeps serving the old
        snapshot throughout and the read side moves on the next refresh —
        which this method performs immediately after the write-side swap
        (double-buffered end to end).  Ingest *is* blocked for the replay
        duration; the cost is O(retained window nnz) and is tracked in the
        ``repro_serving_migration_seconds`` histogram.

        An attached :class:`~repro.obs.AccuracyProbe` is :meth:`reset
        <repro.obs.AccuracyProbe.reset>` after the swap so post-migration
        gauges never blend measurements of two configurations, and
        ``config_version`` bumps — ``stats()`` / ``/metrics`` expose the
        version, count, duration and trigger of migrations.
        """
        from repro.distributed.shard import ShardSpec

        spec = (
            target
            if isinstance(target, ShardSpec)
            else self._spec_for_plan(target)
        )
        started = time.perf_counter()
        with self._write_lock:
            if hasattr(self.sketcher, "migrate"):
                # Durable write side: crash-safe rebuild + checkpoint.
                self.sketcher.migrate(spec, num_panes=num_panes)
            elif hasattr(self.sketcher, "rebuild"):
                self.sketcher = self.sketcher.rebuild(
                    spec,
                    num_panes=num_panes,
                    registry=self.sketcher.registry,
                )
            else:
                raise TypeError(
                    "migrate() needs a history-preserving write side: a "
                    "PaneRing with retain_raw=True (see "
                    "ServingEstimator.windowed/autoscaled) or a "
                    "DurableSketcher wrapping one"
                )
        elapsed = time.perf_counter() - started
        self.config_version += 1
        self.migration_count += 1
        self.last_migration_seconds = elapsed
        self.last_migration_trigger = trigger
        self.last_migration_reason = reason or None
        self._migration_seconds.observe(elapsed)
        self.registry.counter(
            "repro_serving_migrations_total",
            "committed live migrations by trigger",
            labels={"trigger": trigger},
        ).inc()
        if self.probe is not None:
            # Stale-probe seam: pre-migration reservoir/SNR windows measure
            # a sketch that no longer exists.
            self.probe.reset()
        # Move the read side now (the engine gauge_fns and window gauges
        # rebind through self.sketcher automatically).  A refresh failure
        # here leaves the old snapshot serving (stale-but-available) and
        # propagates like any explicit refresh failure.
        self.refresh()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def engine(self) -> QueryEngine:
        """The currently served engine (auto-snapshots on first access)."""
        engine = self._engine
        if engine is None:
            self.refresh()
            engine = self._engine
        return engine

    @property
    def snapshot(self) -> SketchSnapshot:
        return self.engine.snapshot

    @property
    def served_snapshot_id(self) -> int | None:
        """Id of the currently served snapshot, ``None`` before the first
        swap — a side-effect-free probe (liveness checks must not trigger
        the ``engine`` property's auto-snapshot build)."""
        engine = self._engine
        return None if engine is None else engine.snapshot.snapshot_id

    def query_pair(self, i: int, j: int) -> float:
        return self.engine.query_pair(i, j)

    def query_pairs(self, i, j) -> np.ndarray:
        return self.engine.query_pairs(i, j)

    def query_keys(self, keys) -> np.ndarray:
        return self.engine.query_keys(keys)

    def query_keys_versioned(self, keys) -> tuple[int, np.ndarray]:
        """``(snapshot_id, estimates)`` answered by one consistent snapshot.

        The engine reference is captured once, so the id and every estimate
        come from the same frozen snapshot even if a swap lands mid-call —
        the no-torn-reads contract the concurrency tests assert.
        """
        engine = self.engine
        return engine.snapshot.snapshot_id, engine.query_keys(keys)

    def top_pairs(self, k: int):
        return self.engine.top_pairs(k)

    def top_neighbors(self, feature: int, k: int):
        return self.engine.top_neighbors(feature, k)

    def pairs_above(self, threshold: float, *, limit: int | None = None):
        return self.engine.pairs_above(threshold, limit=limit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def swap_count(self) -> int:
        """Engine swaps installed (thin view over the registry counter)."""
        return int(self._swaps_total.value)

    @property
    def refresh_failures(self) -> int:
        """Failed refresh attempts (thin view over the registry counter)."""
        return int(self._refresh_failures_total.value)

    @property
    def degraded(self) -> bool:
        """``True`` while the last (auto-)refresh failed and no successful
        swap has happened since — reads still work, but off a snapshot
        older than the configured refresh cadence implies."""
        return self._degraded

    @property
    def stale_samples(self) -> int:
        """Write-side samples the currently served snapshot has not seen."""
        return int(self.sketcher.samples_seen - self._samples_at_refresh)

    @property
    def stale_seconds(self) -> float | None:
        """Seconds since the served engine was swapped in (``None`` before
        the first swap)."""
        if self._last_swap_monotonic is None:
            return None
        return time.monotonic() - self._last_swap_monotonic

    def health(self) -> dict:
        """JSON-ready degradation probe (the HTTP ``/health`` payload).

        ``status`` is ``"ok"`` or ``"degraded"`` — degraded when the last
        refresh failed or the ingest circuit breaker is not closed.  Either
        way the estimator keeps answering queries from the last good
        snapshot (stale-but-available); the remaining fields say *how*
        stale and *why* degraded.
        """
        degraded = self._degraded or self.breaker.state != "closed"
        return {
            "status": "degraded" if degraded else "ok",
            "snapshot_id": self.served_snapshot_id,
            "writable": True,
            "degraded": degraded,
            "stale_samples": self.stale_samples,
            "stale_seconds": self.stale_seconds,
            "refresh_failures": self.refresh_failures,
            "last_refresh_error": self.last_refresh_error,
            "breaker": self.breaker.state,
            "wal_lag": getattr(self.sketcher, "wal_lag", None),
        }

    def stats(self) -> dict:
        """JSON-ready serving stats: swaps, write-side progress, engine.

        Streaming write sides add their recency metadata: ``window_span``
        (current and as of the last swap), pane geometry and rotation count
        for a :class:`~repro.streaming.PaneRing`; the ``decay`` factor for
        a :class:`~repro.streaming.DecayingSketcher`.
        """
        engine = self._engine
        out = {
            "swap_count": self.swap_count,
            "last_swap_seconds": self.last_swap_seconds,
            "refresh_every": self.refresh_every,
            "write_samples_seen": self.sketcher.samples_seen,
            "window_span": None,
            "decay": getattr(self.sketcher, "decay", None),
            "engine": None if engine is None else engine.stats(),
            "degraded": self._degraded,
            "refresh_failures": self.refresh_failures,
            "last_refresh_error": self.last_refresh_error,
            "stale_samples": self.stale_samples,
            "stale_seconds": self.stale_seconds,
            "breaker": self.breaker.stats(),
            "config_version": self.config_version,
            "migrations": {
                "count": self.migration_count,
                "last_seconds": self.last_migration_seconds,
                "last_trigger": self.last_migration_trigger,
                "last_reason": self.last_migration_reason,
            },
        }
        if self.autoscaler is not None:
            out["autoscaler"] = self.autoscaler.stats()
        if getattr(self.sketcher, "wal_lag", None) is not None:
            # Durable write side: surface WAL/checkpoint progress.
            out["durability"] = self.sketcher.stats()
        if self._windowed:
            out["window_span"] = int(self.sketcher.window_span)
            out["window"] = {
                "window_span": int(self.sketcher.window_span),
                "served_window_span": self.last_window_span,
                "num_panes": int(self.sketcher.num_panes),
                "pane_samples": int(self.sketcher.pane_samples),
                "rotations": int(self.sketcher.rotations),
                "last_rotate_seconds": float(self.sketcher.last_rotate_seconds),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        engine = self._engine
        served = "none" if engine is None else engine.snapshot.snapshot_id
        return (
            f"ServingEstimator(serving=snapshot {served}, "
            f"swaps={self.swap_count}, "
            f"write_samples={self.sketcher.samples_seen})"
        )
