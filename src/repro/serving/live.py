"""Double-buffered concurrent ingest/serve estimator.

:class:`ServingEstimator` pairs a live write-side
:class:`repro.covariance.CovarianceSketcher` with a read-side
:class:`~repro.serving.QueryEngine` over an immutable snapshot.  Ingestion
keeps mutating the write side under a lock; :meth:`refresh` clones the
write-side state (holding the lock only for the copy), builds the
query-optimized snapshot and engine off-line, and **atomically swaps** the
engine reference.  Readers capture the engine reference once per query, so
every answer comes entirely from one frozen snapshot — a query can never
observe a half-updated sketch, and concurrent swaps only change which
complete snapshot the *next* query sees.

The swap is a single attribute rebind (atomic under CPython); readers never
block writers and writers never block readers except for the brief
state-clone inside :meth:`refresh`.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.covariance.pipeline import CovarianceSketcher
from repro.serving.engine import QueryEngine
from repro.serving.snapshot import SketchSnapshot

__all__ = ["ServingEstimator"]


class ServingEstimator:
    """Serve covariance queries while the underlying stream keeps flowing.

    Parameters
    ----------
    sketcher:
        The write-side pipeline (any fitted or fresh
        :class:`CovarianceSketcher`).  Build one from a
        :class:`repro.distributed.ShardSpec` with :meth:`from_spec`.
    top_index:
        Materialized top-pair index size per snapshot.
    scan:
        Index build strategy (see :meth:`SketchSnapshot.from_sketcher`).
    cache_size:
        LRU result-cache capacity of each swapped-in engine (the cache is
        per-snapshot: stale estimates can never outlive their snapshot).
    refresh_every:
        Auto-refresh after this many ingested samples (0 = manual
        :meth:`refresh` only).

    Notes
    -----
    The write side may also be a streaming estimator from
    :mod:`repro.streaming`: a :class:`~repro.streaming.PaneRing`
    (sliding-window mode — each snapshot materialises the current window
    with one pane-merge pass; build with :meth:`windowed`) or a
    :class:`~repro.streaming.DecayingSketcher` (time-decayed mode).  Both
    are detected by duck typing and surface their ``window_span`` /
    ``decay`` metadata through :meth:`stats`, hence through the HTTP
    ``/stats`` route.
    """

    def __init__(
        self,
        sketcher: CovarianceSketcher,
        *,
        top_index: int = 1024,
        scan: bool | None = None,
        cache_size: int = 8192,
        refresh_every: int = 0,
    ):
        if refresh_every < 0:
            raise ValueError(f"refresh_every must be >= 0, got {refresh_every}")
        self.sketcher = sketcher
        self.top_index = int(top_index)
        self.scan = scan
        self.cache_size = int(cache_size)
        self.refresh_every = int(refresh_every)
        self._write_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._engine: QueryEngine | None = None
        self._retired: list[QueryEngine] = []
        self.swap_count = 0
        self.last_swap_seconds = 0.0
        self._samples_at_refresh = 0
        # Streaming write sides (repro.streaming) are duck-typed: a windowed
        # ring exposes window_span, a decaying pipeline exposes decay.
        self._windowed = hasattr(sketcher, "window_span")
        self.last_window_span: int | None = None

    @classmethod
    def from_spec(cls, spec, **kwargs) -> "ServingEstimator":
        """Build around a fresh estimator from a :class:`ShardSpec`."""
        return cls(spec.build_sketcher(), **kwargs)

    @classmethod
    def windowed(
        cls, spec, *, num_panes: int, pane_samples: int, **kwargs
    ) -> "ServingEstimator":
        """Build a sliding-window serving estimator around a fresh
        :class:`~repro.streaming.PaneRing` (see :mod:`repro.streaming`)."""
        # Lazy import: repro.streaming builds on repro.distributed, which
        # sits beside (not under) the serving read path.
        from repro.streaming import PaneRing

        return cls(
            PaneRing(spec, num_panes=num_panes, pane_samples=pane_samples),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def ingest_sparse(self, samples) -> None:
        """Stream sparse ``(indices, values)`` samples into the write side."""
        with self._write_lock:
            self.sketcher.fit_sparse(iter(samples))
        self._maybe_refresh()

    def ingest_dense(self, batch: np.ndarray) -> None:
        """Stream a dense ``(n, d)`` batch into the write side."""
        with self._write_lock:
            self.sketcher.fit_dense(np.atleast_2d(np.asarray(batch)))
        self._maybe_refresh()

    def _maybe_refresh(self) -> None:
        if self.refresh_every <= 0:
            return
        if (
            self.sketcher.samples_seen - self._samples_at_refresh
            >= self.refresh_every
        ):
            # Serialize with any in-flight refresh and re-check under the
            # lock: two ingesters crossing the threshold together must not
            # build two snapshots of the same state.
            with self._refresh_lock:
                if (
                    self.sketcher.samples_seen - self._samples_at_refresh
                    >= self.refresh_every
                ):
                    self._refresh_locked()

    # ------------------------------------------------------------------
    # Snapshot / swap
    # ------------------------------------------------------------------
    def refresh(self) -> SketchSnapshot:
        """Snapshot the write side and atomically swap it into the read side.

        The write lock is held only while the estimator state is cloned;
        the index build and engine construction run on the clone.
        Refreshes themselves are serialized (a second caller waits, then
        builds from the then-current state), so an older snapshot can never
        be installed over a newer one.  Returns the snapshot that is now
        being served.
        """
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> SketchSnapshot:
        started = time.perf_counter()
        snapshot = SketchSnapshot.from_sketcher(
            self.sketcher,
            top_index=self.top_index,
            scan=self.scan,
            lock=self._write_lock,
        )
        self.install(snapshot)
        self.last_swap_seconds = time.perf_counter() - started
        if self._windowed:
            # A windowed snapshot's samples_seen counts only the window's
            # contents, not the stream position — credit the ring's total
            # ingest position instead (samples landing during the off-lock
            # index build may be slightly over-credited; the next batch
            # re-triggers the refresh check either way).
            self._samples_at_refresh = self.sketcher.samples_seen
            # The snapshot's samples_seen *is* the span of the panes it was
            # built from; reading the live ring here instead could report a
            # span a concurrent ingester created after the extraction.
            self.last_window_span = int(snapshot.samples_seen)
        else:
            # Credit only what the snapshot actually contains: samples
            # ingested concurrently with the off-lock index build must
            # still count toward the next refresh_every window.
            self._samples_at_refresh = snapshot.samples_seen
        return snapshot

    def install(self, snapshot: SketchSnapshot) -> QueryEngine:
        """Serve a prebuilt snapshot (atomic engine swap).

        Lets a reducer push snapshots built elsewhere (e.g. from merged
        shard files) into a running server.  The previous engine is retired
        but kept so in-flight readers holding its reference finish safely,
        and so its cache stats remain inspectable.
        """
        engine = QueryEngine(snapshot, cache_size=self.cache_size)
        previous = self._engine
        self._engine = engine  # atomic rebind — the swap
        self.swap_count += 1
        if previous is not None:
            self._retired.append(previous)
            del self._retired[:-4]  # bound the kept history
        return engine

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def engine(self) -> QueryEngine:
        """The currently served engine (auto-snapshots on first access)."""
        engine = self._engine
        if engine is None:
            self.refresh()
            engine = self._engine
        return engine

    @property
    def snapshot(self) -> SketchSnapshot:
        return self.engine.snapshot

    @property
    def served_snapshot_id(self) -> int | None:
        """Id of the currently served snapshot, ``None`` before the first
        swap — a side-effect-free probe (liveness checks must not trigger
        the ``engine`` property's auto-snapshot build)."""
        engine = self._engine
        return None if engine is None else engine.snapshot.snapshot_id

    def query_pair(self, i: int, j: int) -> float:
        return self.engine.query_pair(i, j)

    def query_pairs(self, i, j) -> np.ndarray:
        return self.engine.query_pairs(i, j)

    def query_keys(self, keys) -> np.ndarray:
        return self.engine.query_keys(keys)

    def query_keys_versioned(self, keys) -> tuple[int, np.ndarray]:
        """``(snapshot_id, estimates)`` answered by one consistent snapshot.

        The engine reference is captured once, so the id and every estimate
        come from the same frozen snapshot even if a swap lands mid-call —
        the no-torn-reads contract the concurrency tests assert.
        """
        engine = self.engine
        return engine.snapshot.snapshot_id, engine.query_keys(keys)

    def top_pairs(self, k: int):
        return self.engine.top_pairs(k)

    def top_neighbors(self, feature: int, k: int):
        return self.engine.top_neighbors(feature, k)

    def pairs_above(self, threshold: float, *, limit: int | None = None):
        return self.engine.pairs_above(threshold, limit=limit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready serving stats: swaps, write-side progress, engine.

        Streaming write sides add their recency metadata: ``window_span``
        (current and as of the last swap), pane geometry and rotation count
        for a :class:`~repro.streaming.PaneRing`; the ``decay`` factor for
        a :class:`~repro.streaming.DecayingSketcher`.
        """
        engine = self._engine
        out = {
            "swap_count": self.swap_count,
            "last_swap_seconds": self.last_swap_seconds,
            "refresh_every": self.refresh_every,
            "write_samples_seen": self.sketcher.samples_seen,
            "window_span": None,
            "decay": getattr(self.sketcher, "decay", None),
            "engine": None if engine is None else engine.stats(),
        }
        if self._windowed:
            out["window_span"] = int(self.sketcher.window_span)
            out["window"] = {
                "window_span": int(self.sketcher.window_span),
                "served_window_span": self.last_window_span,
                "num_panes": int(self.sketcher.num_panes),
                "pane_samples": int(self.sketcher.pane_samples),
                "rotations": int(self.sketcher.rotations),
                "last_rotate_seconds": float(self.sketcher.last_rotate_seconds),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        engine = self._engine
        served = "none" if engine is None else engine.snapshot.snapshot_id
        return (
            f"ServingEstimator(serving=snapshot {served}, "
            f"swaps={self.swap_count}, "
            f"write_samples={self.sketcher.samples_seen})"
        )
