"""Vectorized query engine over a :class:`~repro.serving.SketchSnapshot`.

Every query shape — single pair, pair batches, multi-request batches —
funnels into one **single-gather planner**: cache hits are satisfied from
the LRU result cache, the distinct missing keys are deduplicated and
estimated with *one* fused-kernel gather against the frozen sketch (the
PR 1 ``(K, n)`` single-fancy-index path), and the results are scattered
back to request positions and into the cache.  Because the sketch is
frozen and cache entries are stored verbatim, every answer is bit-identical
to ``estimator.estimate`` on the snapshotted state, cached or not.

Index-backed queries (``top_pairs``, ``top_neighbors``, thresholded range
queries) are pure array slices over the snapshot's materialized indexes and
never touch the sketch.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.serving.cache import LRUCache
from repro.serving.snapshot import SketchSnapshot

__all__ = ["QueryEngine"]

#: Batched / index-backed operations the engine times (``op`` label values
#: of the ``repro_serving_query_seconds`` histogram).  The scalar
#: ``query_pair`` fast path is deliberately absent: it runs in ~1 us, so
#: even two ``perf_counter`` reads would be a measurable tax — its volume
#: still shows up through the engine counters and the cache hit ratio.
_TIMED_OPS = ("keys", "batches", "top_pairs", "neighbors", "above", "range")


class QueryEngine:
    """Caching, batching query front end for one immutable snapshot.

    Parameters
    ----------
    snapshot:
        The frozen :class:`SketchSnapshot` to serve.
    cache_size:
        LRU result-cache capacity in single-key entries (0 disables
        caching; every query then gathers).
    cache_batch_limit:
        Key batches larger than this bypass the cache and go straight to
        one fused gather (``None`` = always consult the cache).  Measured
        on this workload the gather costs ~20us fixed + ~0.13us/key while
        per-key cache bookkeeping costs ~0.4us/key, so beyond a few dozen
        keys the raw gather beats even an all-hits cache pass — and large
        scan-like batches would churn useful entries out of the LRU.
    registry:
        Optional :class:`repro.obs.MetricsRegistry` receiving per-op
        latency histograms (``repro_serving_query_seconds{op=...}``) and
        collect-time gauges over the cache / engine counters.  Defaults to
        a :class:`~repro.obs.NullRegistry` (no-op instruments, no cost);
        a :class:`~repro.serving.ServingEstimator` passes its own registry
        so histograms accumulate across snapshot swaps.

    Notes
    -----
    The engine holds no mutable sketch state — only the cache and counters
    — so it can be swapped atomically under concurrent readers
    (:class:`repro.serving.ServingEstimator` does exactly that).  The cache
    is thread-safe; under concurrent readers the answers stay exact (a
    lost race just re-gathers the same value) while the engine's counters
    are best-effort tallies.
    """

    def __init__(
        self,
        snapshot: SketchSnapshot,
        *,
        cache_size: int = 8192,
        cache_batch_limit: int | None = 64,
        registry: MetricsRegistry | None = None,
    ):
        self.snapshot = snapshot
        self.cache = LRUCache(cache_size)
        self.cache_batch_limit = cache_batch_limit
        self.queries = 0  # logical query calls answered
        self.keys_served = 0  # individual key estimates returned
        self.gathers = 0  # fused sketch gathers issued
        self.gathered_keys = 0  # distinct keys fetched by those gathers
        # Telemetry: a shared per-stack registry accumulates latency
        # histograms across snapshot swaps (get-or-create returns the same
        # instrument to every engine built on the registry), while the
        # gauge_fn callbacks rebind to the newest engine — so `/metrics`
        # always reads the *served* engine's live counters/cache with zero
        # hot-path cost.  No registry = NullRegistry = no-op instruments.
        self.registry = registry if registry is not None else NullRegistry()
        reg = self.registry
        hist = {
            op: reg.histogram(
                "repro_serving_query_seconds",
                "engine query latency by operation",
                labels={"op": op},
            )
            for op in _TIMED_OPS
        }
        self._hist_keys = hist["keys"]
        self._hist_batches = hist["batches"]
        self._hist_top = hist["top_pairs"]
        self._hist_neighbors = hist["neighbors"]
        self._hist_above = hist["above"]
        self._hist_range = hist["range"]
        reg.gauge_fn(
            "repro_serving_cache_hit_ratio",
            lambda: self.cache.stats().hit_rate,
            "served engine's LRU cache hit ratio",
        )
        reg.gauge_fn(
            "repro_serving_cache_size",
            lambda: len(self.cache),
            "served engine's LRU cache entries",
        )
        reg.gauge_fn(
            "repro_serving_cache_evictions",
            lambda: self.cache.evictions,
            "served engine's LRU cache evictions",
        )
        reg.gauge_fn(
            "repro_serving_engine_queries",
            lambda: self.queries,
            "logical query calls answered by the served engine",
        )
        reg.gauge_fn(
            "repro_serving_engine_keys_served",
            lambda: self.keys_served,
            "key estimates returned by the served engine",
        )
        reg.gauge_fn(
            "repro_serving_engine_gathers",
            lambda: self.gathers,
            "fused sketch gathers issued by the served engine",
        )
        reg.gauge_fn(
            "repro_serving_engine_gathered_keys",
            lambda: self.gathered_keys,
            "distinct keys fetched by the served engine's gathers",
        )

    # ------------------------------------------------------------------
    # The single-gather planner
    # ------------------------------------------------------------------
    def query_keys(self, keys) -> np.ndarray:
        """Estimates for flat pair keys, cache-assisted, one gather at most."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError("keys must be a 1-D array")
        self.queries += 1
        self.keys_served += keys.size
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        with self._hist_keys.time():
            cache = self.cache
            if cache.capacity == 0 or (
                self.cache_batch_limit is not None
                and keys.size > self.cache_batch_limit
            ):
                self.gathers += 1
                self.gathered_keys += keys.size
                return self.snapshot.query_keys(keys)
            out = np.empty(keys.size, dtype=np.float64)
            miss_positions: list[int] = []
            miss_keys: list[int] = []
            key_list = keys.tolist()
            for pos, value in enumerate(cache.get_many(key_list)):
                if value is None:
                    miss_positions.append(pos)
                    miss_keys.append(key_list[pos])
                else:
                    out[pos] = value
            if miss_keys:
                # Deduplicate the misses, fetch them with one fused gather.
                uniq, inverse = np.unique(
                    np.asarray(miss_keys, dtype=np.int64), return_inverse=True
                )
                self.gathers += 1
                self.gathered_keys += uniq.size
                values = self.snapshot.query_keys(uniq)
                cache.put_many(zip(uniq.tolist(), values.tolist()))
                out[np.asarray(miss_positions, dtype=np.intp)] = values[inverse]
            return out

    def query_batches(self, key_batches) -> list[np.ndarray]:
        """Answer many key-array requests through one planned gather.

        Concatenates the requests, runs :meth:`query_keys` once (one cache
        pass + at most one sketch gather for all requests together) and
        splits the answers back per request — the batch endpoint of the
        HTTP front end.
        """
        key_batches = [np.asarray(b, dtype=np.int64) for b in key_batches]
        if not key_batches:
            return []
        with self._hist_batches.time():
            flat = self.query_keys(
                np.concatenate(key_batches)
                if len(key_batches) > 1
                else key_batches[0]
            )
            splits = np.cumsum([b.size for b in key_batches[:-1]])
            return [part.copy() for part in np.split(flat, splits)]

    # ------------------------------------------------------------------
    # Pair-shaped entry points
    # ------------------------------------------------------------------
    def query_pairs(self, i, j) -> np.ndarray:
        """Estimates for explicit ``(i, j)`` pairs (vectorized)."""
        from repro.hashing.pairs import pair_to_index

        return self.query_keys(pair_to_index(i, j, self.snapshot.dim))

    def query_pair(self, i: int, j: int) -> float:
        """Scalar fast path: one pair's estimate with minimal overhead.

        Same arithmetic as :func:`repro.hashing.pairs.pair_to_index` (exact
        in Python ints), same gather as the batched path — bit-identical,
        just without the array round-trip per request.
        """
        i, j = int(i), int(j)
        d = self.snapshot.dim
        if not 0 <= i < j < d:
            raise ValueError(f"pair indices must satisfy 0 <= i < j < {d}")
        key = i * (2 * d - i - 1) // 2 + (j - i - 1)
        self.queries += 1
        self.keys_served += 1
        cache = self.cache
        if cache.capacity != 0:
            value = cache.get(key)
            if value is not None:
                return value
        self.gathers += 1
        self.gathered_keys += 1
        value = float(
            self.snapshot.sketch.query(np.asarray([key], dtype=np.int64))[0]
        )
        cache.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Index-backed queries (no sketch gather)
    # ------------------------------------------------------------------
    def top_pairs(self, k: int):
        """``(i, j, estimates)`` of the ``k`` best indexed pairs."""
        self.queries += 1
        with self._hist_top.time():
            result = self.snapshot.top_pairs(k)
        self.keys_served += result[0].size
        return result

    def top_neighbors(self, feature: int, k: int):
        """``(partners, estimates)`` — feature's best candidate partners."""
        self.queries += 1
        with self._hist_neighbors.time():
            result = self.snapshot.top_neighbors(feature, k)
        self.keys_served += result[0].size
        return result

    def pairs_above(self, threshold: float, *, limit: int | None = None):
        """Pairs with rank >= ``threshold``, open-world when the backing
        sketch supports hierarchical descent (see snapshot docs)."""
        self.queries += 1
        with self._hist_above.time():
            result = self.snapshot.pairs_above(threshold, limit=limit)
        self.keys_served += result[0].size
        return result

    def pairs_in_range(self, lo: float, hi: float, *, limit: int | None = None):
        """Indexed pairs with ``lo <= rank < hi``."""
        self.queries += 1
        with self._hist_range.time():
            result = self.snapshot.pairs_in_range(lo, hi, limit=limit)
        self.keys_served += result[0].size
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready engine counters + cache stats + snapshot meta.

        ``latency`` summarises the registry's per-op histograms (count /
        mean / interpolated p50-p99); all zeros when the engine runs with
        the default :class:`NullRegistry`.
        """
        return {
            "queries": self.queries,
            "keys_served": self.keys_served,
            "gathers": self.gathers,
            "gathered_keys": self.gathered_keys,
            "cache": self.cache.stats().as_dict(),
            "snapshot": self.snapshot.meta(),
            "latency": {
                "keys": self._hist_keys.stats(),
                "batches": self._hist_batches.stats(),
                "top_pairs": self._hist_top.stats(),
                "neighbors": self._hist_neighbors.stats(),
                "above": self._hist_above.stats(),
                "range": self._hist_range.stats(),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine(snapshot_id={self.snapshot.snapshot_id}, "
            f"queries={self.queries}, cache={len(self.cache)}/"
            f"{self.cache.capacity})"
        )
