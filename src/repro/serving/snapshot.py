"""Immutable query-optimized snapshots of a fitted sketch estimator.

The write path (:mod:`repro.covariance`, :mod:`repro.distributed`) produces
estimators that keep mutating as the stream flows.  A
:class:`SketchSnapshot` is the read path's unit of state: a frozen,
self-contained copy of everything needed to answer queries —

* the sketch counters (deep-copied and made read-only, so queries against
  the snapshot are bit-identical to ``estimator.estimate`` at the moment it
  was taken and can never observe later ingestion);
* a materialized **top-pair index**: the ``top_index`` best pairs by
  estimate, with their flat keys and ``(i, j)`` coordinates, sorted by
  decreasing rank — ``top_pairs`` and thresholded range queries are pure
  array slices;
* a per-feature **neighbor index** mapping feature ``i`` to its candidate
  correlated partners (both endpoints of every indexed pair), each
  feature's partners sorted by decreasing rank — ``top_neighbors`` is two
  binary searches.

Snapshots persist atomically to single ``.npz`` files (write-temp +
``os.replace``), and :class:`CheckpointManager` keeps a bounded history of
them on disk.
"""

from __future__ import annotations

import logging
import math
import os
import re
import threading
from dataclasses import dataclass, field
from itertools import count
from pathlib import Path

import numpy as np

from repro.durability.integrity import (
    IntegrityError,
    corruption_guard,
    crc32_array,
    recorded_crcs,
    verify_arrays,
    write_npz,
)
from repro.hashing.pairs import index_to_pair, num_pairs, pair_to_index
from repro.sketch.serialization import (
    mmap_npz_array,
    sketch_from_arrays,
    sketch_to_arrays,
)
from repro.sketch.topk import scan_top_keys

__all__ = ["SketchSnapshot", "CheckpointManager"]

logger = logging.getLogger(__name__)

#: Process-wide monotonically increasing snapshot identity.  Readers use it
#: to tell "which snapshot answered me" apart across atomic swaps.
_SNAPSHOT_IDS = count(1)

#: Pair spaces up to this size are index-built by exact scan; beyond it the
#: estimator's candidate tracker supplies the pool (trillion-scale protocol,
#: same crossover as ``CovarianceSketcher.top_pairs``).
_SCAN_LIMIT = 4_000_000

_SKETCH_PREFIX = "sk_"


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class SketchSnapshot:
    """Frozen, query-ready view of a fitted covariance/correlation sketch.

    Build one with :meth:`from_sketcher` (also reachable as
    ``SketchResult.snapshot()`` / ``ShardedFit.snapshot()``), from persisted
    shard files with :meth:`from_shard_results`, or load one with
    :meth:`load`.  All arrays are read-only; the dataclass is frozen; the
    sketch is a read-only deep copy — mutating the live estimator after the
    snapshot is taken can never change an already-taken snapshot.
    """

    dim: int
    mode: str
    method: str
    total_samples: int
    samples_seen: int
    two_sided: bool
    sketch: object
    index_keys: np.ndarray
    index_i: np.ndarray
    index_j: np.ndarray
    index_estimates: np.ndarray
    index_rank: np.ndarray
    nbr_feature: np.ndarray
    nbr_partner: np.ndarray
    nbr_key: np.ndarray
    nbr_estimate: np.ndarray
    index_exact: bool
    snapshot_id: int = field(default_factory=lambda: next(_SNAPSHOT_IDS))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sketcher(
        cls,
        sketcher,
        *,
        top_index: int = 1024,
        scan: bool | None = None,
        chunk: int = 1 << 20,
        lock: "threading.Lock | None" = None,
    ) -> "SketchSnapshot":
        """Snapshot a fitted :class:`repro.covariance.CovarianceSketcher`.

        Parameters
        ----------
        sketcher:
            The live write-side pipeline (any estimator whose sketch
            supports deep copy — all four methods do).
        top_index:
            Size of the materialized top-pair index (bounds ``top_pairs``
            and range queries; ``top_neighbors`` sees both endpoints of
            every indexed pair).
        scan:
            ``True`` ranks the index by querying every pair key (exact;
            small pair spaces), ``False`` uses the estimator's candidate
            tracker.  Default: scan iff ``p <= 4e6``, matching
            ``CovarianceSketcher.top_pairs``.
        chunk:
            Scan chunk size in keys.
        lock:
            Optional lock held only while the estimator state is cloned.
            The expensive index build runs on the clone after release, so a
            concurrent ingester is blocked for the copy, not the scan —
            this is what keeps ``ServingEstimator.refresh`` cheap on the
            write side.  A sketcher that exposes its own
            ``export_snapshot_state(lock=...)`` (a windowed
            :class:`~repro.streaming.PaneRing`, whose pane-merge pass must
            likewise run off-lock) takes over the lock discipline itself.
        """
        exporter = getattr(sketcher, "export_snapshot_state", None)
        if exporter is not None:
            state = exporter(lock=lock)
        elif lock is not None:
            with lock:
                state = sketcher.estimator.export_snapshot_state()
        else:
            state = sketcher.estimator.export_snapshot_state()
        return cls._from_state(
            state,
            dim=sketcher.dim,
            mode=sketcher.mode,
            top_index=top_index,
            scan=scan,
            chunk=chunk,
        )

    @classmethod
    def from_estimator(
        cls,
        estimator,
        dim: int,
        *,
        mode: str = "covariance",
        top_index: int = 1024,
        scan: bool | None = None,
        chunk: int = 1 << 20,
    ) -> "SketchSnapshot":
        """Snapshot a bare estimator (no pipeline) over ``dim`` features."""
        return cls._from_state(
            estimator.export_snapshot_state(),
            dim=int(dim),
            mode=mode,
            top_index=top_index,
            scan=scan,
            chunk=chunk,
        )

    @classmethod
    def from_shard_results(cls, shards, **kwargs) -> "SketchSnapshot":
        """Snapshot directly from merged :class:`repro.distributed.ShardResult`s.

        Runs :func:`repro.distributed.merge_shard_results` (all merge laws
        apply) and snapshots the merged sketcher — the reducer-to-serving
        handoff for shard files persisted by remote workers.
        """
        # Lazy import: repro.distributed builds on repro.core, and serving
        # sits above both.
        from repro.distributed.reduce import merge_shard_results

        return cls.from_sketcher(merge_shard_results(shards), **kwargs)

    @classmethod
    def _from_state(
        cls,
        state: dict,
        *,
        dim: int,
        mode: str,
        top_index: int,
        scan: bool | None,
        chunk: int,
    ) -> "SketchSnapshot":
        sketch = state["sketch"]
        two_sided = bool(state["two_sided"])
        p = num_pairs(dim)
        if scan is None:
            scan = p <= _SCAN_LIMIT
        keys, estimates = _top_keys(
            sketch,
            p,
            int(top_index),
            chunk=chunk,
            two_sided=two_sided,
            scan=scan,
            tracker_keys=state["tracker_keys"],
        )
        return cls._assemble(
            dim=dim,
            mode=mode,
            method=str(state["name"]),
            total_samples=int(state["total_samples"]),
            samples_seen=int(state["samples_seen"]),
            two_sided=two_sided,
            sketch=sketch,
            keys=keys,
            estimates=estimates,
            index_exact=bool(scan),
        )

    @classmethod
    def _assemble(
        cls,
        *,
        dim: int,
        mode: str,
        method: str,
        total_samples: int,
        samples_seen: int,
        two_sided: bool,
        sketch,
        keys: np.ndarray,
        estimates: np.ndarray,
        index_exact: bool,
        snapshot_id: int | None = None,
    ) -> "SketchSnapshot":
        rank = np.abs(estimates) if two_sided else estimates.copy()
        i, j = (
            index_to_pair(keys, dim)
            if keys.size
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        # Neighbor index: both endpoints of every indexed pair, grouped by
        # feature, each feature's partners in decreasing rank order.  One
        # lexsort; lookups are two binary searches on nbr_feature.
        feat = np.concatenate([i, j])
        partner = np.concatenate([j, i])
        pkey = np.concatenate([keys, keys])
        pest = np.concatenate([estimates, estimates])
        prank = np.concatenate([rank, rank])
        order = np.lexsort((np.arange(feat.size), -prank, feat))
        extra = {} if snapshot_id is None else {"snapshot_id": int(snapshot_id)}
        return cls(
            dim=int(dim),
            mode=str(mode),
            method=str(method),
            total_samples=int(total_samples),
            samples_seen=int(samples_seen),
            two_sided=bool(two_sided),
            sketch=sketch,
            index_keys=_readonly(keys),
            index_i=_readonly(i),
            index_j=_readonly(j),
            index_estimates=_readonly(estimates),
            index_rank=_readonly(rank),
            nbr_feature=_readonly(feat[order]),
            nbr_partner=_readonly(partner[order]),
            nbr_key=_readonly(pkey[order]),
            nbr_estimate=_readonly(pest[order]),
            index_exact=bool(index_exact),
            **extra,
        )

    # ------------------------------------------------------------------
    # Queries (bit-identical to estimator.estimate on the frozen state)
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        return num_pairs(self.dim)

    @property
    def index_size(self) -> int:
        return self.index_keys.size

    def query_keys(self, keys) -> np.ndarray:
        """Estimates for flat pair keys — one fused gather.

        Keys are range-checked against the pair space: the hash functions
        would happily bucket any int64, so a key computed with the wrong
        ``dim`` must fail loudly instead of returning plausible junk.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size:
            p = self.num_pairs
            if int(keys.min()) < 0 or int(keys.max()) >= p:
                raise ValueError(f"pair keys must lie in [0, {p})")
        return np.asarray(self.sketch.query(keys), dtype=np.float64)

    def query_pairs(self, i, j) -> np.ndarray:
        """Estimates for explicit ``(i, j)`` pairs (``i < j`` elementwise)."""
        return self.query_keys(pair_to_index(i, j, self.dim))

    def top_pairs(self, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``k`` best indexed pairs: ``(i, j, estimates)``, rank-desc.

        ``k`` must be ``>= 0`` (``k=0`` returns empty arrays): a negative
        ``k`` is a caller error, not a Python negative slice — before this
        check, ``k=-1`` silently returned all-but-one of the index.
        """
        k = int(k)
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        k = min(k, self.index_size)
        return self.index_i[:k], self.index_j[:k], self.index_estimates[:k]

    def top_neighbors(
        self, feature: int, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feature ``i``'s ``k`` best candidate partners: ``(partners, estimates)``.

        Candidates come from the materialized pair index (complete when the
        snapshot was scan-built, tracker-bounded otherwise); estimates are
        the frozen sketch's, so they match ``query_pairs`` bit-for-bit.
        """
        feature = int(feature)
        if not 0 <= feature < self.dim:
            raise ValueError(f"feature must be in [0, {self.dim}), got {feature}")
        k = int(k)
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        lo = int(np.searchsorted(self.nbr_feature, feature, side="left"))
        hi = int(np.searchsorted(self.nbr_feature, feature, side="right"))
        hi = min(hi, lo + k)
        return self.nbr_partner[lo:hi].copy(), self.nbr_estimate[lo:hi].copy()

    def pairs_above(
        self, threshold: float, *, limit: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All pairs with rank ``>= threshold``, rank-desc.

        Rank is ``|estimate|`` for two-sided snapshots, the signed estimate
        otherwise.  ``threshold`` must not be NaN (``np.searchsorted``
        comparisons with NaN silently misbehave) and ``limit`` must be
        ``>= 0`` when given.

        Resolution strategy, in order:

        * **Materialized index** when it provably covers the query — the
          index was scan-built (``index_exact``) and either the threshold
          sits above the smallest indexed rank or the whole pair space is
          indexed.  A binary search: O(log index + answer).
        * **Hierarchical descent** when the backing sketch supports
          ``find_heavy`` (method ``"hcs"``) and the threshold is positive:
          the answer is recovered from the sketch alone, over the *full*
          pair space — open-world discovery with no index and no candidate
          enumeration.
        * Otherwise the (possibly tracker-bounded) index slice, the
          historical best-effort answer.
        """
        threshold = float(threshold)
        if math.isnan(threshold):
            raise ValueError("threshold must not be NaN")
        if limit is not None:
            limit = int(limit)
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
        covered = self.index_exact and (
            (self.index_size > 0 and threshold > float(self.index_rank[-1]))
            or self.index_size == self.num_pairs
        )
        if (
            not covered
            and threshold > 0.0
            and hasattr(self.sketch, "find_heavy")
        ):
            keys, estimates = self.sketch.find_heavy(
                threshold, two_sided=self.two_sided, limit=limit
            )
            if keys.size:
                i, j = index_to_pair(keys, self.dim)
            else:
                i = j = np.empty(0, dtype=np.int64)
            return i, j, estimates
        # index_rank is descending; search its negation.
        n = int(np.searchsorted(-self.index_rank, -threshold, side="right"))
        if limit is not None:
            n = min(n, limit)
        return self.index_i[:n], self.index_j[:n], self.index_estimates[:n]

    def pairs_in_range(
        self, lo: float, hi: float, *, limit: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Indexed pairs with ``lo <= rank < hi``, rank-desc.

        Rank is ``|estimate|`` for two-sided snapshots, the signed estimate
        otherwise.  Bounds must be non-NaN with ``lo <= hi``; ``limit``
        must be ``>= 0`` when given.  Unlike :meth:`pairs_above` this stays
        index-backed (a bounded-above band cannot prune a mass descent).
        """
        lo, hi = float(lo), float(hi)
        if math.isnan(lo) or math.isnan(hi):
            raise ValueError(f"range bounds must not be NaN: lo={lo}, hi={hi}")
        if hi < lo:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        if limit is not None:
            limit = int(limit)
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
        # side='right' on the (negated, ascending) ranks skips entries with
        # rank exactly hi — the half-open [lo, hi) contract.
        start = int(np.searchsorted(-self.index_rank, -hi, side="right"))
        stop = int(np.searchsorted(-self.index_rank, -lo, side="right"))
        if limit is not None:
            stop = min(stop, start + limit)
        return (
            self.index_i[start:stop],
            self.index_j[start:stop],
            self.index_estimates[start:stop],
        )

    # ------------------------------------------------------------------
    # Persistence (atomic .npz)
    # ------------------------------------------------------------------
    def save(self, path, *, compress: bool = False) -> Path:
        """Atomically persist to ``path`` (single ``.npz`` file).

        The payload is written to a temporary file in the target directory
        and ``os.replace``d into place, so a concurrent reader (or a crash)
        sees either the old complete file or the new complete file — never
        a torn write.  Every member is covered by a per-array CRC32 plus a
        manifest digest (:mod:`repro.durability.integrity`), so bit rot or
        a torn copy is *detected at load* instead of served.  The backing
        sketch must be a serialisable kind
        (see :mod:`repro.sketch.serialization`).

        Members are *stored* (uncompressed) by default so :meth:`load`
        can map the counter table zero-copy (``mmap=True``); counter
        tables are high-entropy floats, so deflate buys little anyway.
        Pass ``compress=True`` to trade mmap-ability for size.
        """
        payload = {
            "dim": np.asarray(self.dim),
            "mode": np.asarray(self.mode),
            "method": np.asarray(self.method),
            "total_samples": np.asarray(self.total_samples),
            "samples_seen": np.asarray(self.samples_seen),
            "two_sided": np.asarray(self.two_sided),
            "index_keys": self.index_keys,
            "index_estimates": self.index_estimates,
            "index_exact": np.asarray(self.index_exact),
        }
        for name, array in sketch_to_arrays(self.sketch).items():
            payload[_SKETCH_PREFIX + name] = array
        return write_npz(path, payload, compress=compress)

    @classmethod
    def load(
        cls,
        path,
        *,
        mmap: bool = False,
        verify: bool = True,
        verify_tables: bool | None = None,
    ) -> "SketchSnapshot":
        """Restore a snapshot written by :meth:`save`.

        The sketch is rebuilt (same hashes, exact counters) and re-frozen;
        the indexes are re-derived from the stored key/estimate arrays, so
        every query answers exactly as the original snapshot did.  The
        loaded snapshot gets a fresh ``snapshot_id`` (identity is
        per-process).

        Integrity: every member is checked against the CRCs recorded at
        save time (``verify=False`` opts out; files predating the
        integrity layer load unverified).  A mismatch raises
        :class:`repro.durability.IntegrityError` naming the file, the
        member and the reason — a corrupted snapshot is never silently
        served.  In the eager path ``verify_tables`` defaults to ``True``
        (everything is read anyway); in the mmap path it defaults to
        ``False`` — headers and the small members are verified at open,
        and the bulk counter table keeps its O(headers) open cost — pass
        ``verify_tables=True`` to page the mapped tables through CRC too.

        With ``mmap=True`` the counter table — by far the bulk of a
        snapshot — is a read-only ``np.memmap`` of the archive member
        instead of a materialized copy: opening costs two header reads
        regardless of snapshot size, pages fault in on first query, and a
        :class:`CheckpointManager` hot-swap never holds two resident
        copies of the counters.  Requires the default uncompressed save;
        writes through any path hit the read-only-mmap guard
        (:func:`repro.sketch.base.reject_readonly_counters`).
        """
        if verify_tables is None:
            verify_tables = not mmap
        source = str(path)
        with corruption_guard(source), np.load(path, allow_pickle=False) as data:
            table_members = tuple(
                name
                for name in data.files
                if name.startswith(_SKETCH_PREFIX)
                and (
                    name == _SKETCH_PREFIX + "table" or name.endswith("_table")
                )
            )
            if verify:
                # mmap never reads tables through np.load (they verify via
                # the mapped view below, when asked); the eager path skips
                # them only on explicit verify_tables=False.
                skip = table_members if (mmap or not verify_tables) else ()
                verify_arrays(data, source=source, skip=skip)
            # In the mmap path table contents are deliberately not read
            # through np.load; mapped members verify below when asked.
            crcs = recorded_crcs(data) if (verify and mmap and verify_tables) else {}
            sketch_state = {}
            for name in data.files:
                if not name.startswith(_SKETCH_PREFIX):
                    continue
                key = name[len(_SKETCH_PREFIX) :]
                if mmap and name in table_members:
                    mapped = mmap_npz_array(path, name)
                    if name in crcs and crc32_array(mapped) != crcs[name]:
                        raise IntegrityError(
                            f"{source}: member {name!r} failed its checksum — "
                            "the mapped counter table was corrupted on disk"
                        )
                    sketch_state[key] = mapped
                else:
                    sketch_state[key] = data[name]
            sketch = sketch_from_arrays(sketch_state, copy=not mmap)
            if hasattr(sketch, "freeze"):
                sketch.freeze()
            return cls._assemble(
                dim=int(data["dim"]),
                mode=str(data["mode"]),
                method=str(data["method"]),
                total_samples=int(data["total_samples"]),
                samples_seen=int(data["samples_seen"]),
                two_sided=bool(data["two_sided"]),
                sketch=sketch,
                keys=data["index_keys"].copy(),
                estimates=data["index_estimates"].copy(),
                index_exact=bool(data["index_exact"]),
            )

    def meta(self) -> dict:
        """JSON-ready description (served by the HTTP ``/stats`` endpoint)."""
        return {
            "snapshot_id": self.snapshot_id,
            "dim": self.dim,
            "num_pairs": self.num_pairs,
            "mode": self.mode,
            "method": self.method,
            "total_samples": self.total_samples,
            "samples_seen": self.samples_seen,
            "two_sided": self.two_sided,
            "index_size": int(self.index_size),
            "index_exact": self.index_exact,
            "memory_floats": int(self.sketch.memory_floats),
            "memory_bytes": int(self.sketch.memory_bytes),
        }


def _top_keys(
    sketch,
    p: int,
    k: int,
    *,
    chunk: int,
    two_sided: bool,
    scan: bool,
    tracker_keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``(keys, estimates)`` of the ``k`` best pairs, rank-desc.

    Rank is ``|estimate|`` when ``two_sided`` (the sidedness the sampling
    rule and tracker already use), the signed estimate otherwise.
    """
    if k < 1:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

    def rank_of(est: np.ndarray) -> np.ndarray:
        return np.abs(est) if two_sided else est

    if not scan:
        keys = np.asarray(tracker_keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        estimates = np.asarray(sketch.query(keys), dtype=np.float64)
        order = np.argsort(-rank_of(estimates), kind="stable")[:k]
        return keys[order].copy(), estimates[order].copy()

    # Exact enumeration: the shared fixed-buffer scan kernel the pipeline's
    # top_pairs also uses, with this snapshot's rank transform.
    return scan_top_keys(
        sketch.query,
        p,
        k,
        chunk=chunk,
        rank_fn=rank_of if two_sided else None,
    )


#: Checkpoint filename shape: ``<prefix>-<sequence>.npz``.
_CKPT_RE = re.compile(r"^(?P<prefix>.+)-(?P<seq>\d{8})\.npz$")


class CheckpointManager:
    """Bounded on-disk history of serving snapshots.

    Every :meth:`save` writes ``<prefix>-<seq>.npz`` (monotonically
    increasing sequence, resumed from whatever is already on disk) through
    the snapshot's atomic write path, then prunes to the newest ``retain``
    files.  A crash between write and prune leaves extra checkpoints, never
    a torn one.

    Parameters
    ----------
    directory:
        Checkpoint directory (created if missing).
    retain:
        How many newest checkpoints to keep (>= 1).
    prefix:
        Filename prefix, for several managed histories in one directory.
    """

    def __init__(self, directory, *, retain: int = 3, prefix: str = "snapshot"):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        if "-" in prefix or "/" in prefix:
            raise ValueError(f"prefix must not contain '-' or '/', got {prefix!r}")
        self.directory = Path(directory)
        self.retain = int(retain)
        self.prefix = prefix
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[int, Path]]:
        out = []
        for path in self.directory.iterdir():
            match = _CKPT_RE.match(path.name)
            if match and match.group("prefix") == self.prefix:
                out.append((int(match.group("seq")), path))
        out.sort()
        return out

    def checkpoints(self) -> list[Path]:
        """Existing checkpoint paths, oldest first."""
        return [path for _, path in self._entries()]

    def latest(self) -> Path | None:
        """Path of the newest checkpoint, or ``None``."""
        entries = self._entries()
        return entries[-1][1] if entries else None

    def save(self, snapshot: SketchSnapshot) -> Path:
        """Persist ``snapshot`` as the next checkpoint and prune old ones."""
        entries = self._entries()
        seq = entries[-1][0] + 1 if entries else 1
        path = self.directory / f"{self.prefix}-{seq:08d}.npz"
        snapshot.save(path)
        for _, old in self._entries()[: -self.retain]:
            old.unlink(missing_ok=True)
        return path

    def load_latest(self, *, mmap: bool = False) -> SketchSnapshot | None:
        """Load the newest *valid* checkpoint, or ``None`` when none loads.

        Walks the history newest-first: a truncated, bit-flipped or
        otherwise unreadable checkpoint is **quarantined** — renamed to
        ``<name>.corrupt`` with the reason logged — and the walk falls
        back to the next-newest file instead of crashing the serving
        process on one bad artifact.  (A crash mid-``save`` cannot produce
        a torn file — writes are atomic — but bit rot, partial copies and
        full disks can.)

        ``mmap=True`` maps the counter table zero-copy (see
        :meth:`SketchSnapshot.load`) — the hot-swap path a serving process
        uses to roll to a new multi-GB checkpoint without ever holding two
        resident copies.
        """
        for _, path in reversed(self._entries()):
            try:
                return SketchSnapshot.load(path, mmap=mmap)
            except (IntegrityError, FileNotFoundError, OSError) as exc:
                logger.warning(
                    "quarantining corrupt checkpoint %s (%s); "
                    "falling back to the previous one",
                    path,
                    exc,
                )
                try:
                    os.replace(path, path.with_name(path.name + ".corrupt"))
                except OSError:  # pragma: no cover - quarantine is best-effort
                    logger.warning("could not quarantine %s", path)
        return None
