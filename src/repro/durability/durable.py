"""Crash-safe ingestion: checkpoint + write-ahead log around a sketcher.

:class:`DurableSketcher` wraps a write side — a plain
:class:`repro.covariance.CovarianceSketcher` built from a
:class:`repro.distributed.ShardSpec`, or a windowed
:class:`repro.streaming.PaneRing` — and makes it survive process death:

* every ingest call is journalled to an :class:`~repro.durability.journal.
  IngestJournal` *before* it is applied (write-ahead discipline);
* periodic checkpoints persist the full estimator state atomically with
  integrity checksums, each stamped with the WAL position it covers;
* :func:`DurableSketcher.recover` (or simply re-opening the directory)
  loads the newest *valid* checkpoint — quarantining truncated or corrupt
  ones with a logged reason — and replays the journalled batches past it.

Because ingestion is deterministic at call granularity (``fit_sparse``
batches on a fixed grid and flushes per call; ASCS gates on the sketch
state, no RNG), the recovered state is **bit-identical** to the
uninterrupted run — the property ``tests/test_crash_recovery.py`` proves
at seeded-random kill points under both float64 and int16 storage.

Layout of a durable directory::

    spec.npz            the recipe (ShardSpec + ring geometry) — recovery
                        is self-contained, no constructor args needed
    wal-<seq>.wal       journal segments (see repro.durability.journal)
    ckpt-<n>.npz        checkpoint n: ShardResult + ``wal_seq`` member
    ckpt-<n>.ring/      (windowed mode) the PaneRing state; ckpt-<n>.npz
                        is then a marker written *after* the ring, so a
                        half-written ring is never considered valid
    *.corrupt           quarantined artifacts (renamed, never deleted)

The wrapper quacks like the write side it wraps (``dim`` / ``mode`` /
``samples_seen`` / ``fit_sparse`` / ``estimator`` /
``export_snapshot_state`` pass through), so it slots directly into
:class:`repro.serving.ServingEstimator`.
"""

from __future__ import annotations

import logging
import os
import re
import struct
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.distributed.shard import (
    ShardSpec,
    extract_shard_result,
    load_shard_result,
    restore_sketcher,
    save_shard_result,
    spec_from_arrays,
    spec_to_arrays,
)
from repro.durability.integrity import IntegrityError, verify_arrays, write_npz
from repro.durability.journal import IngestJournal
from repro.obs.metrics import MetricsRegistry
from repro.streaming.windows import PaneRing

__all__ = ["DurableSketcher"]

logger = logging.getLogger(__name__)

_RECIPE = "spec.npz"
_CKPT_RE = re.compile(r"^ckpt-(?P<id>\d{8})\.npz$")

#: Exceptions that mean "this artifact is unreadable", not "this code is
#: broken" — the checkpoint walk-back quarantines on these and keeps going.
_CORRUPTION_ERRORS = (
    IntegrityError,
    OSError,
    ValueError,
    KeyError,
    EOFError,
    zipfile.BadZipFile,
    zlib.error,
    struct.error,
)


class DurableSketcher:
    """Checkpoint + WAL wrapper making a sketcher crash-safe.

    Opening a directory that already holds a recipe **recovers** (newest
    valid checkpoint + journal replay); an empty directory **creates**
    (``spec`` required).  All state lives under ``directory``.

    Parameters
    ----------
    directory:
        The durable directory (created if missing).
    spec:
        The :class:`repro.distributed.ShardSpec` recipe.  Required when
        creating; optional (and cross-checked) when recovering.
    num_panes, pane_samples:
        When given at create time, the write side is a sliding-window
        :class:`repro.streaming.PaneRing` with this geometry instead of a
        plain sketcher.  Persisted in the recipe.
    checkpoint_every:
        Auto-checkpoint after this many journalled ingest calls
        (``0`` disables — call :meth:`checkpoint` manually).  Default 64.
    keep_checkpoints:
        Checkpoints retained before pruning (older WAL segments fully
        covered by the *oldest retained* checkpoint are pruned with them,
        which is why the default keeps 2: the newest checkpoint can be
        lost to corruption and recovery still has the journal suffix the
        previous one needs).
    fsync, rotate_every, open_fn:
        Passed to :class:`~repro.durability.journal.IngestJournal`
        (``open_fn`` is the fault-injection hook).
    registry:
        The stack's :class:`repro.obs.MetricsRegistry` (a fresh one when
        omitted).  The journal shares it, so WAL append/fsync/rotate
        timings, checkpoint size/duration and replay progress all land in
        one exposition; a :class:`repro.serving.ServingEstimator` wrapping
        this sketcher adopts the same registry automatically.
    """

    def __init__(
        self,
        directory,
        spec: ShardSpec | None = None,
        *,
        num_panes: int | None = None,
        pane_samples: int | None = None,
        retain_raw: bool = False,
        checkpoint_every: int | None = None,
        keep_checkpoints: int | None = None,
        fsync: str = "rotate",
        rotate_every: int = 256,
        open_fn=open,
        registry: MetricsRegistry | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._ckpt_seconds = self.registry.histogram(
            "repro_ckpt_write_seconds",
            "checkpoint persist duration (journal sync + state write + prune)",
        )
        self._ckpt_total = self.registry.counter(
            "repro_ckpt_writes_total", "checkpoints persisted"
        )
        self._ckpt_bytes = self.registry.gauge(
            "repro_ckpt_last_bytes", "size of the newest checkpoint on disk"
        )
        self._replayed_total = self.registry.counter(
            "repro_wal_replayed_records_total",
            "WAL records replayed during recovery",
        )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        recipe_path = self.directory / _RECIPE
        if recipe_path.exists():
            self._load_recipe(recipe_path, spec, num_panes, pane_samples)
        else:
            if spec is None:
                raise ValueError(
                    f"{self.directory} holds no {_RECIPE} — pass a ShardSpec "
                    "to create a new durable sketcher"
                )
            if (num_panes is None) != (pane_samples is None):
                raise ValueError(
                    "windowed mode needs both num_panes and pane_samples"
                )
            self.spec = spec
            self.num_panes = num_panes
            self.pane_samples = pane_samples
            self.retain_raw = bool(retain_raw)
            self._write_recipe(recipe_path)
        self.windowed = self.num_panes is not None
        self.checkpoint_every = (
            64 if checkpoint_every is None else int(checkpoint_every)
        )
        self.keep_checkpoints = max(
            1, 2 if keep_checkpoints is None else int(keep_checkpoints)
        )

        # --- recover state: newest valid checkpoint, then WAL replay ---
        inner, ckpt_seq, ckpt_id = self._load_latest_checkpoint()
        if inner is not None and self.windowed:
            # A migration commits at the checkpoint-marker write and only
            # then rewrites the recipe: a crash in between leaves a recipe
            # one configuration behind the newest valid checkpoint.  The
            # checkpoint is the committed truth — adopt its spec/geometry
            # and self-heal the recipe, so recovery always lands on
            # exactly one side of the migration, never a hybrid.
            self._adopt_checkpoint_config(inner)
        self._inner = inner if inner is not None else self._fresh_inner()
        self.checkpoint_seq = ckpt_seq
        self.recovered_from = ckpt_id
        self._next_ckpt = self._next_checkpoint_id()
        self.journal = IngestJournal(
            self.directory,
            prefix="wal",
            rotate_every=rotate_every,
            fsync=fsync,
            open_fn=open_fn,
            registry=self.registry,
        )
        self.registry.gauge_fn(
            "repro_wal_lag",
            lambda: self.wal_lag,
            "acknowledged WAL records not yet covered by a checkpoint",
        )
        self.replayed_records = self._replay(after=ckpt_seq)
        self._records_since_checkpoint = self.replayed_records
        if self.recovered_from is not None or self.replayed_records:
            logger.info(
                "durable recover %s: checkpoint %s + %d replayed record(s), "
                "samples_seen=%d",
                self.directory,
                self.recovered_from,
                self.replayed_records,
                self._inner.samples_seen,
            )

    # ------------------------------------------------------------------
    # Recipe
    # ------------------------------------------------------------------
    def _write_recipe(self, path: Path) -> None:
        payload = dict(spec_to_arrays(self.spec))
        payload["windowed"] = np.asarray(int(self.num_panes is not None))
        payload["num_panes"] = np.asarray(
            -1 if self.num_panes is None else int(self.num_panes)
        )
        payload["pane_samples"] = np.asarray(
            -1 if self.pane_samples is None else int(self.pane_samples)
        )
        payload["retain_raw"] = np.asarray(int(self.retain_raw))
        write_npz(path, payload)

    def _load_recipe(self, path, spec, num_panes, pane_samples) -> None:
        with np.load(path, allow_pickle=False) as data:
            verify_arrays(data, source=str(path))
            recipe_spec = spec_from_arrays(data)
            windowed = bool(int(data["windowed"]))
            recipe_panes = int(data["num_panes"]) if windowed else None
            recipe_samples = int(data["pane_samples"]) if windowed else None
            recipe_retain = (
                bool(int(data["retain_raw"]))
                if "retain_raw" in data.files
                else False
            )
        if spec is not None and spec != recipe_spec:
            raise ValueError(
                f"{path}: the passed spec differs from the persisted recipe; "
                "a durable directory is bound to its recipe (only migrate() "
                "rewrites it)"
            )
        if num_panes is not None and num_panes != recipe_panes:
            raise ValueError(
                f"{path}: num_panes={num_panes} differs from the persisted "
                f"recipe ({recipe_panes})"
            )
        if pane_samples is not None and pane_samples != recipe_samples:
            raise ValueError(
                f"{path}: pane_samples={pane_samples} differs from the "
                f"persisted recipe ({recipe_samples})"
            )
        self.spec = recipe_spec
        self.num_panes = recipe_panes
        self.pane_samples = recipe_samples
        self.retain_raw = recipe_retain

    def _adopt_checkpoint_config(self, ring: PaneRing) -> None:
        """Align the recipe with a recovered checkpoint's configuration."""
        if (
            ring.spec == self.spec
            and ring.num_panes == self.num_panes
            and ring.pane_samples == self.pane_samples
            and ring.retain_raw == self.retain_raw
        ):
            return
        logger.info(
            "%s: recovered checkpoint carries a migrated configuration; "
            "adopting it and rewriting the recipe",
            self.directory,
        )
        self.spec = ring.spec
        self.num_panes = ring.num_panes
        self.pane_samples = ring.pane_samples
        self.retain_raw = ring.retain_raw
        self._write_recipe(self.directory / _RECIPE)

    def _fresh_inner(self):
        if self.num_panes is not None:
            return PaneRing(
                self.spec,
                num_panes=self.num_panes,
                pane_samples=self.pane_samples,
                registry=self.registry,
                retain_raw=self.retain_raw,
            )
        return self.spec.build_sketcher()

    @classmethod
    def recover(cls, directory, **kwargs) -> "DurableSketcher":
        """Reopen an existing durable directory (explicit-intent spelling:
        raises if there is nothing to recover)."""
        if not (Path(directory) / _RECIPE).exists():
            raise FileNotFoundError(
                f"{directory} is not a durable directory (no {_RECIPE})"
            )
        return cls(directory, **kwargs)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoints(self) -> list[tuple[int, Path]]:
        out = []
        for path in self.directory.iterdir():
            match = _CKPT_RE.match(path.name)
            if match:
                out.append((int(match.group("id")), path))
        out.sort()
        return out

    def _next_checkpoint_id(self) -> int:
        entries = self._checkpoints()
        return entries[-1][0] + 1 if entries else 0

    def _ring_dir(self, ckpt_id: int) -> Path:
        return self.directory / f"ckpt-{ckpt_id:08d}.ring"

    def _quarantine(self, path: Path, reason: Exception) -> None:
        logger.warning(
            "quarantining corrupt checkpoint %s: %s", path, reason
        )
        targets = [path]
        if self.windowed:
            ring = self._ring_dir(int(_CKPT_RE.match(path.name).group("id")))
            if ring.exists():
                targets.append(ring)
        for target in targets:
            try:
                os.replace(target, target.with_name(target.name + ".corrupt"))
            except OSError:  # pragma: no cover - quarantine is best-effort
                logger.warning("could not quarantine %s", target)

    def _load_latest_checkpoint(self):
        """Newest valid checkpoint as ``(live_write_side, wal_seq, id)``.

        Walks the checkpoints newest-first; truncated, bit-flipped or
        half-written ones are quarantined (renamed ``*.corrupt``) with a
        logged reason and the walk continues — the
        ``CheckpointManager.load_latest`` discipline, applied to ingest
        state.  Returns ``(None, -1, None)`` when no checkpoint survives.
        """
        for ckpt_id, path in reversed(self._checkpoints()):
            try:
                if self.windowed:
                    with np.load(path, allow_pickle=False) as data:
                        verify_arrays(data, source=str(path))
                        wal_seq = int(data["wal_seq"])
                    inner = PaneRing.load(
                        self._ring_dir(ckpt_id), registry=self.registry
                    )
                else:
                    result = load_shard_result(path)
                    with np.load(path, allow_pickle=False) as data:
                        wal_seq = (
                            int(data["wal_seq"]) if "wal_seq" in data.files else -1
                        )
                    inner = restore_sketcher(result)
            except _CORRUPTION_ERRORS as exc:
                self._quarantine(path, exc)
                continue
            return inner, wal_seq, ckpt_id
        return None, -1, None

    def checkpoint(self) -> Path:
        """Persist the current state; returns the checkpoint path.

        The covered journal suffix is fsynced first, so the checkpoint
        never claims a WAL position the disk does not actually hold.  Old
        checkpoints beyond ``keep_checkpoints`` are pruned, along with the
        journal segments fully covered by the oldest retained checkpoint.
        """
        with self._ckpt_seconds.time():
            self.journal.sync()
            wal_seq = self.journal.last_seq
            ckpt_id = self._next_ckpt
            path = self.directory / f"ckpt-{ckpt_id:08d}.npz"
            if self.windowed:
                # Ring first, tiny marker last + atomically: recovery
                # treats a checkpoint as existing only once its marker is
                # complete.
                self._inner.save(self._ring_dir(ckpt_id))
                write_npz(
                    path, {"ring": np.asarray(1), "wal_seq": np.asarray(wal_seq)}
                )
            else:
                result = extract_shard_result(self._inner, self.spec)
                save_shard_result(result, path, extra={"wal_seq": wal_seq})
            self._next_ckpt = ckpt_id + 1
            self.checkpoint_seq = wal_seq
            self._records_since_checkpoint = 0
            self._prune()
        self._ckpt_total.inc()
        self._ckpt_bytes.set(path.stat().st_size)
        return path

    def migrate(self, spec: ShardSpec, *, num_panes: int | None = None) -> Path:
        """Re-shape the windowed write side crash-safely, keeping history.

        Rebuilds the ring under the new ``spec`` (and optionally a new
        window size) by replaying its retained raw panes
        (:meth:`repro.streaming.PaneRing.rebuild` — requires the sketcher
        to have been created with ``retain_raw=True``), then commits the
        result as a checkpoint.  The write order makes mid-migration
        crashes land on **exactly one side**:

        1. the new ring directory is written first — a crash here leaves
           the old-configuration checkpoint newest, recovery stays on the
           old side and the orphaned ring directory is inert;
        2. the checkpoint **marker** is written atomically — this is the
           commit point: once it exists, recovery loads the new ring;
        3. the recipe is rewritten last — a crash between 2 and 3 is
           healed at recovery by adopting the checkpoint's configuration
           over the stale recipe.

        WAL continuity is unbroken: the migration checkpoint covers the
        journal position at commit, so records ingested after it replay
        into the new configuration on recovery, exactly like any other
        checkpoint.  Returns the marker path.
        """
        if not self.windowed:
            raise ValueError(
                "migrate() needs a windowed durable sketcher "
                "(create with num_panes/pane_samples)"
            )
        new_ring = self._inner.rebuild(
            spec, num_panes=num_panes, registry=self.registry
        )
        with self._ckpt_seconds.time():
            self.journal.sync()
            wal_seq = self.journal.last_seq
            ckpt_id = self._next_ckpt
            path = self.directory / f"ckpt-{ckpt_id:08d}.npz"
            new_ring.save(self._ring_dir(ckpt_id))
            # Commit point (atomic tmp+rename inside write_npz).
            write_npz(
                path, {"ring": np.asarray(1), "wal_seq": np.asarray(wal_seq)}
            )
            self._inner = new_ring
            self.spec = spec
            self.num_panes = new_ring.num_panes
            self._write_recipe(self.directory / _RECIPE)
            self._next_ckpt = ckpt_id + 1
            self.checkpoint_seq = wal_seq
            self._records_since_checkpoint = 0
            self._prune()
        self._ckpt_total.inc()
        self._ckpt_bytes.set(path.stat().st_size)
        return path

    def _prune(self) -> None:
        entries = self._checkpoints()
        drop = entries[: -self.keep_checkpoints]
        keep = entries[-self.keep_checkpoints :]
        for ckpt_id, path in drop:
            path.unlink(missing_ok=True)
            ring = self._ring_dir(ckpt_id)
            if ring.exists():
                for pane in ring.iterdir():
                    pane.unlink()
                ring.rmdir()
        if keep:
            oldest_path = keep[0][1]
            with np.load(oldest_path, allow_pickle=False) as data:
                covered = int(data["wal_seq"]) if "wal_seq" in data.files else -1
            if covered >= 0:
                self.journal.prune_through(covered)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self, *, after: int) -> int:
        """Apply journalled records past ``after``; returns the count.

        Enforces continuity between the checkpoint and the journal: the
        first replayed record must be ``after + 1`` — a gap means the WAL
        was pruned past what this checkpoint covers (all newer checkpoints
        were lost), which is unrecoverable without silent divergence.
        """
        expected = after + 1
        replayed = 0
        for seq, samples in self.journal.records(after=after):
            if seq != expected:
                raise IntegrityError(
                    f"{self.directory}: checkpoint covers WAL record {after} "
                    f"but the journal resumes at {seq} — records "
                    f"{expected}..{seq - 1} were pruned or lost; recovery "
                    "cannot reconstruct the stream bit-identically"
                )
            self._inner.fit_sparse(iter(samples))
            expected = seq + 1
            replayed += 1
            self._replayed_total.inc()
        return replayed

    # ------------------------------------------------------------------
    # Write side (the ServingEstimator duck-type surface)
    # ------------------------------------------------------------------
    def fit_sparse(self, samples) -> "DurableSketcher":
        """Journal one ingest batch, then apply it.

        The batch is materialised (the journal and the estimator both
        consume it), durably appended, and only then fed to the wrapped
        write side — so a crash at any byte leaves either "not
        acknowledged, not applied" (safe to resend) or "acknowledged and
        replayable".  Empty batches are not journalled.
        """
        batch = samples if isinstance(samples, list) else list(samples)
        if not batch:
            return self
        self.journal.append(batch)
        self._inner.fit_sparse(iter(batch))
        self._records_since_checkpoint += 1
        if self.checkpoint_every and (
            self._records_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return self

    def fit_dense(self, batch):
        raise NotImplementedError(
            "durable ingest is sparse-only (the WAL records sparse batches); "
            "convert dense rows upstream"
        )

    @property
    def dim(self) -> int:
        return self.spec.dim

    @property
    def mode(self) -> str:
        return self.spec.mode

    @property
    def samples_seen(self) -> int:
        return self._inner.samples_seen

    @property
    def estimator(self):
        return self._inner.estimator

    @property
    def wal_lag(self) -> int:
        """Acknowledged WAL records not yet covered by a checkpoint — the
        replay debt a crash right now would incur."""
        return self.journal.last_seq - self.checkpoint_seq

    def __getattr__(self, name):
        # Everything else (export_snapshot_state, window_span, window,
        # rotate, ...) passes through to the wrapped write side.
        if name == "_inner":  # recursion guard during unpickling/partial init
            raise AttributeError(name)
        return getattr(self._inner, name)

    def stats(self) -> dict:
        return {
            "windowed": self.windowed,
            "samples_seen": int(self._inner.samples_seen),
            "checkpoint_seq": self.checkpoint_seq,
            "checkpoints": len(self._checkpoints()),
            "checkpoint_every": self.checkpoint_every,
            "wal_lag": self.wal_lag,
            "replayed_records": self.replayed_records,
            "recovered_from": self.recovered_from,
            "journal": self.journal.stats(),
        }

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "DurableSketcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableSketcher({self.directory}, windowed={self.windowed}, "
            f"seen={self._inner.samples_seen}, wal_lag={self.wal_lag})"
        )
