"""Checksums for persisted state — detect corruption before it is served.

Every durable artifact in the system is an ``.npz`` of named numpy arrays
(sketch files, shard results, serving snapshots).  This module adds a
uniform integrity layer on top: :func:`integrity_payload` computes a CRC32
per member array plus a manifest digest over the whole set, encoded as
three extra arrays that ride inside the same archive; :func:`verify_arrays`
checks a loaded payload against them and raises :class:`IntegrityError`
naming the file, the member and the reason.

Why CRC32 and not a cryptographic hash: the threat model is *accidental*
corruption — torn writes, bit rot, partial copies — not adversaries.
CRC32 is ~bytes/cycle in zlib, catches all single-bit and burst errors up
to 32 bits, and keeps snapshot save overhead unmeasurable next to the
array I/O itself.

Files written before this layer existed carry no integrity members; they
load unverified (``verify_arrays`` is a no-op on them), so every pre-tier
checkpoint and shard file remains readable.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zipfile
import zlib
from contextlib import contextmanager
from pathlib import Path

import numpy as np

__all__ = [
    "IntegrityError",
    "corruption_guard",
    "crc32_array",
    "integrity_payload",
    "recorded_crcs",
    "verify_arrays",
    "write_npz",
    "INTEGRITY_MEMBERS",
]

#: The member names the integrity layer reserves inside an ``.npz``.
INTEGRITY_MEMBERS = ("integrity_names", "integrity_crcs", "integrity_digest")


class IntegrityError(ValueError):
    """A persisted artifact failed a checksum or could not be parsed.

    Raised with a message that names the file and the reason, so operators
    (and ``CheckpointManager``'s walk-back) can quarantine the exact bad
    artifact instead of guessing.  A ``ValueError`` subclass: corrupt
    input *is* a bad value, and pre-existing callers that handle
    ``ValueError`` around loads keep working unchanged.
    """


def crc32_array(array: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (dtype + shape are hashed separately
    via the name list, so two members cannot swap undetected)."""
    array = np.ascontiguousarray(array)
    return zlib.crc32(array.view(np.uint8).reshape(-1).data) & 0xFFFFFFFF


def _digest(names: list[str], crcs: list[int]) -> int:
    """Manifest digest: CRC32 over the sorted (name, crc) pairs, so a
    dropped, renamed or substituted member changes the digest even when
    every surviving member's own CRC still matches."""
    acc = 0
    for name, crc in sorted(zip(names, crcs)):
        acc = zlib.crc32(name.encode("utf-8"), acc)
        acc = zlib.crc32(int(crc).to_bytes(4, "little"), acc)
    return acc & 0xFFFFFFFF


def integrity_payload(payload: dict) -> dict[str, np.ndarray]:
    """Integrity members covering every array in ``payload``.

    Returns ``{integrity_names, integrity_crcs, integrity_digest}`` ready
    to be written into the same ``.npz``.  The members cover the payload
    as passed — add them last, after the payload is final.
    """
    names = sorted(str(k) for k in payload)
    crcs = [crc32_array(np.asarray(payload[name])) for name in names]
    return {
        "integrity_names": np.asarray(names),
        "integrity_crcs": np.asarray(crcs, dtype=np.uint32),
        "integrity_digest": np.asarray(_digest(names, crcs), dtype=np.uint32),
    }


def verify_arrays(
    data,
    *,
    source: str = "<arrays>",
    skip: tuple[str, ...] = (),
) -> bool:
    """Verify a loaded ``.npz`` (or array mapping) against its integrity
    members.

    Parameters
    ----------
    data:
        A mapping of member name -> array (an open ``np.load`` handle
        works).  Must expose the member names via ``.files`` or ``keys()``.
    source:
        Label for error messages (usually the file path).
    skip:
        Member names whose *contents* are not checked (their presence and
        their recorded CRC still feed the digest) — the mmap path skips the
        bulk counter table for O(headers) opens and verifies it lazily.

    Returns ``True`` when integrity members were present and everything
    checked out, ``False`` when the payload predates the integrity layer
    (nothing to verify).  Raises :class:`IntegrityError` on any mismatch.
    """
    members = list(getattr(data, "files", None) or data.keys())
    if "integrity_names" not in members:
        return False
    for member in INTEGRITY_MEMBERS:
        if member not in members:
            raise IntegrityError(
                f"{source}: integrity members are incomplete (missing "
                f"{member!r}) — the file was truncated or assembled by hand"
            )
    names = [str(n) for n in np.asarray(data["integrity_names"])]
    crcs = np.asarray(data["integrity_crcs"], dtype=np.uint64).tolist()
    recorded_digest = int(np.asarray(data["integrity_digest"]))
    if len(names) != len(crcs):
        raise IntegrityError(
            f"{source}: integrity manifest is malformed "
            f"({len(names)} names vs {len(crcs)} checksums)"
        )
    if _digest(names, [int(c) for c in crcs]) != recorded_digest:
        raise IntegrityError(
            f"{source}: integrity manifest digest mismatch — the checksum "
            "table itself is corrupt"
        )
    present = set(members) - set(INTEGRITY_MEMBERS)
    missing = sorted(set(names) - present)
    if missing:
        raise IntegrityError(
            f"{source}: member(s) {', '.join(map(repr, missing))} are listed "
            "in the integrity manifest but absent from the archive "
            "(truncated or partially copied file)"
        )
    extra = sorted(present - set(names))
    if extra:
        raise IntegrityError(
            f"{source}: member(s) {', '.join(map(repr, extra))} are not "
            "covered by the integrity manifest (foreign or injected data)"
        )
    for name, crc in zip(names, crcs):
        if name in skip:
            continue
        actual = crc32_array(np.asarray(data[name]))
        if actual != int(crc):
            raise IntegrityError(
                f"{source}: member {name!r} failed its checksum "
                f"(recorded {int(crc):#010x}, computed {actual:#010x}) — "
                "the array bytes were corrupted on disk"
            )
    return True


def recorded_crcs(data) -> dict[str, int]:
    """The ``{member: crc}`` table an archive records, or ``{}`` for files
    predating the integrity layer.  Used by lazy verifiers (the mmap
    snapshot path) that check bulk members on their own schedule."""
    members = list(getattr(data, "files", None) or data.keys())
    if "integrity_names" not in members or "integrity_crcs" not in members:
        return {}
    names = [str(n) for n in np.asarray(data["integrity_names"])]
    crcs = np.asarray(data["integrity_crcs"], dtype=np.uint64).tolist()
    return {name: int(crc) for name, crc in zip(names, crcs)}


@contextmanager
def corruption_guard(source):
    """Re-raise low-level archive failures as :class:`IntegrityError`.

    ``np.load`` on a truncated or bit-flipped ``.npz`` surfaces anything
    from ``zipfile.BadZipFile`` to ``zlib.error`` to a bare ``ValueError``
    depending on which bytes got hit.  Loaders wrap their reads in this
    guard so callers always get one exception type that *names the file
    and the reason* — never a silently wrong artifact, never a grab-bag of
    internal errors.  ``FileNotFoundError`` and existing
    :class:`IntegrityError`\\ s pass through untouched.
    """
    try:
        yield
    except (IntegrityError, FileNotFoundError):
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
        EOFError,
        KeyError,
        ValueError,
        OSError,
    ) as exc:
        raise IntegrityError(
            f"{source}: unreadable or corrupt archive "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def write_npz(
    path, payload: dict, *, compress: bool = False, integrity: bool = True
) -> Path:
    """Atomically write an ``.npz`` with integrity members appended.

    The archive is written to a temporary file in the target directory and
    ``os.replace``d into place, so a crash mid-write leaves either the old
    complete file or no file — never a torn one (the failure mode
    ``CheckpointManager``'s walk-back and the WAL recovery path otherwise
    have to tolerate).  A missing ``.npz`` suffix is appended, matching
    ``np.savez``.
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    out = dict(payload)
    if integrity:
        out.update(integrity_payload(out))
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            (np.savez_compressed if compress else np.savez)(handle, **out)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
