"""Write-ahead ingest log — batch-aligned durability for one-pass streams.

The estimator is single-pass over an unreplayable stream: any state lost in
a crash is gone forever.  :class:`IngestJournal` closes that hole with the
classic WAL discipline, specialised to this system's determinism:

* **journal first, apply second** — a batch of sparse samples is encoded
  and written to the log *before* it is fed to ``fit_sparse``.  A crash
  mid-write tears only the unacknowledged tail record, which recovery
  drops; every acknowledged batch is replayable.
* **batch-aligned records** — one record per ingest call, preserving the
  exact call boundaries.  Ingestion is deterministic given those boundaries
  (``fit_sparse`` batches on a fixed grid and flushes per call), so
  *checkpoint + replay is bit-identical to an uninterrupted run* — the
  property ``tests/test_crash_recovery.py`` proves at seeded-random kill
  points.
* **fsync on rotate** (default) — segments are fsynced when they close and
  on :meth:`close`; ``fsync="always"`` hardens every append, ``"never"``
  trusts the OS page cache.  Acknowledgement always means "flushed to the
  OS"; the fsync policy decides what a *power* failure can take with it.

Record framing (little-endian)::

    segment file  <prefix>-<first_seq:08d>.wal
    file header   8-byte magic  b"ASCSWAL1"
    record        u32 crc32(payload) | u64 payload_len | payload
    payload       u64 seq | u64 n_samples
                  | i64 lengths[n_samples] | i64 indices[nnz] | f64 values[nnz]

Recovery semantics: each segment contributes its longest valid record
prefix (CRC-checked); a torn or corrupt tail is dropped with a logged
warning.  Record sequence numbers must then be contiguous across segments —
a gap means an *acknowledged* batch vanished (a corrupt middle segment),
which is unrecoverable data loss and raises
:class:`~repro.durability.integrity.IntegrityError` instead of silently
serving a diverged state.
"""

from __future__ import annotations

import logging
import os
import re
import struct
import time
import zlib
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.durability.integrity import IntegrityError
from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["IngestJournal", "replay_journal", "journal_end_seq"]

logger = logging.getLogger(__name__)

_MAGIC = b"ASCSWAL1"
_HEADER = struct.Struct("<IQ")  # crc32, payload_len
_SEGMENT_RE = re.compile(r"^(?P<prefix>.+)-(?P<seq>\d{8})\.wal$")

#: Sanity ceiling for a single record (1 GiB) — a length field beyond this
#: is framing corruption, not a real batch.
_MAX_RECORD = 1 << 30


def _encode_payload(seq: int, samples) -> bytes:
    lengths = np.asarray([len(idx) for idx, _ in samples], dtype=np.int64)
    if len(samples):
        indices = np.concatenate(
            [np.asarray(idx, dtype=np.int64).reshape(-1) for idx, _ in samples]
        )
        values = np.concatenate(
            [np.asarray(val, dtype=np.float64).reshape(-1) for _, val in samples]
        )
    else:
        indices = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    if indices.size != values.size:
        raise ValueError("sample indices and values must align")
    head = struct.pack("<QQ", seq, len(samples))
    return head + lengths.tobytes() + indices.tobytes() + values.tobytes()


def _decode_payload(payload: bytes, *, source: str) -> tuple[int, list]:
    if len(payload) < 16:
        raise IntegrityError(f"{source}: record payload shorter than its header")
    seq, n_samples = struct.unpack_from("<QQ", payload, 0)
    offset = 16
    lengths = np.frombuffer(payload, dtype=np.int64, count=n_samples, offset=offset)
    offset += 8 * n_samples
    nnz = int(lengths.sum())
    expected = offset + 8 * nnz + 8 * nnz
    if len(payload) != expected:
        raise IntegrityError(
            f"{source}: record {seq} length mismatch "
            f"({len(payload)} bytes vs {expected} implied by its lengths)"
        )
    indices = np.frombuffer(payload, dtype=np.int64, count=nnz, offset=offset)
    offset += 8 * nnz
    values = np.frombuffer(payload, dtype=np.float64, count=nnz, offset=offset)
    samples, pos = [], 0
    for m in lengths.tolist():
        samples.append(
            (indices[pos : pos + m].copy(), values[pos : pos + m].copy())
        )
        pos += m
    return int(seq), samples


def _segment_records(path: Path) -> Iterator[tuple[int, list]]:
    """Yield the longest valid record prefix of one segment.

    Stops (with a logged warning) at the first torn or CRC-corrupt record —
    the torn-tail tolerance.  Whether stopping early is *acceptable* is the
    caller's call (:func:`replay_journal` enforces cross-segment seq
    contiguity, which converts a corrupt middle segment into a hard error).
    """
    with open(path, "rb") as handle:
        if handle.read(len(_MAGIC)) != _MAGIC:
            logger.warning("WAL segment %s has a bad magic header; skipping", path)
            return
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return  # clean EOF
            if len(header) < _HEADER.size:
                logger.warning(
                    "WAL segment %s ends in a torn record header "
                    "(%d stray bytes); dropping the tail", path, len(header)
                )
                return
            crc, length = _HEADER.unpack(header)
            if length > _MAX_RECORD:
                logger.warning(
                    "WAL segment %s: implausible record length %d — framing "
                    "corruption; dropping the tail", path, length
                )
                return
            payload = handle.read(length)
            if len(payload) < length:
                logger.warning(
                    "WAL segment %s ends in a torn record payload "
                    "(%d of %d bytes); dropping the tail", path, len(payload), length
                )
                return
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                logger.warning(
                    "WAL segment %s: record failed its CRC; dropping the tail",
                    path,
                )
                return
            yield _decode_payload(payload, source=str(path))


def _segments(directory: Path, prefix: str) -> list[tuple[int, Path]]:
    out = []
    if not directory.exists():
        return out
    for path in directory.iterdir():
        match = _SEGMENT_RE.match(path.name)
        if match and match.group("prefix") == prefix:
            out.append((int(match.group("seq")), path))
    out.sort()
    return out


def replay_journal(
    directory, *, prefix: str = "wal", after: int = -1
) -> Iterator[tuple[int, list]]:
    """Yield ``(seq, samples)`` for every acknowledged record with
    ``seq > after``, in order.

    Torn tails are dropped per segment; sequence numbers must otherwise be
    contiguous across the records read — a gap raises
    :class:`IntegrityError` because an *acknowledged* batch is missing and
    any state replayed past it would silently diverge.
    """
    directory = Path(directory)
    previous = None
    for _, path in _segments(directory, prefix):
        for seq, samples in _segment_records(path):
            if previous is not None and seq != previous + 1:
                if seq <= previous:
                    # A stale segment re-covering replayed seqs (e.g. the
                    # tail segment recovery rewrote) — skip duplicates.
                    continue
                raise IntegrityError(
                    f"{path}: WAL gap — record {seq} follows {previous}; "
                    "an acknowledged batch was lost to corruption, replay "
                    "cannot reconstruct the stream"
                )
            previous = seq
            if seq > after:
                yield seq, samples


def journal_end_seq(directory, *, prefix: str = "wal") -> int:
    """Highest replayable record seq in the journal (-1 when empty)."""
    last = -1
    for last, _ in replay_journal(directory, prefix=prefix):
        pass
    return last


class IngestJournal:
    """Segmented write-ahead log of ingest batches.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Reopening over an existing
        journal resumes sequence numbers after the last replayable record
        and starts a *fresh* segment, so a torn tail from a previous crash
        is never appended to.
    prefix:
        Segment filename prefix (several journals can share a directory).
    rotate_every:
        Records per segment before rotation (and its fsync) kicks in.
    fsync:
        ``"rotate"`` (default) — fsync a segment when it closes and on
        :meth:`close`; ``"always"`` — fsync every append; ``"never"``.
    open_fn:
        File-opening hook (``open``-compatible).  The fault-injection
        harness (:mod:`repro.durability.faults`) substitutes one that tears
        writes or fills the disk deterministically.
    registry:
        Optional :class:`repro.obs.MetricsRegistry` receiving WAL timing
        histograms (``repro_wal_append_seconds`` /
        ``repro_wal_fsync_seconds`` / ``repro_wal_rotate_seconds``) and
        collect-time gauges over the journal counters.  A
        :class:`~repro.durability.DurableSketcher` shares its stack
        registry here so WAL health rides the same ``/metrics`` scrape as
        serving latency.
    """

    _FSYNC_MODES = ("rotate", "always", "never")

    def __init__(
        self,
        directory,
        *,
        prefix: str = "wal",
        rotate_every: int = 256,
        fsync: str = "rotate",
        open_fn: Callable = open,
        registry: MetricsRegistry | None = None,
    ):
        if rotate_every < 1:
            raise ValueError(f"rotate_every must be >= 1, got {rotate_every}")
        if fsync not in self._FSYNC_MODES:
            raise ValueError(
                f"fsync must be one of {self._FSYNC_MODES}, got {fsync!r}"
            )
        if "-" in prefix or "/" in prefix:
            raise ValueError(f"prefix must not contain '-' or '/', got {prefix!r}")
        self.directory = Path(directory)
        self.prefix = prefix
        self.rotate_every = int(rotate_every)
        self.fsync = fsync
        self._open_fn = open_fn
        self.directory.mkdir(parents=True, exist_ok=True)
        self.last_seq = journal_end_seq(self.directory, prefix=prefix)
        self._handle = None
        self._segment_records_written = 0
        self._tail_torn = False
        self.records_written = 0
        self.bytes_written = 0
        self.rotations = 0
        reg = registry if registry is not None else NullRegistry()
        self._append_seconds = reg.histogram(
            "repro_wal_append_seconds",
            "WAL record append duration (encode + write + flush [+ fsync])",
        )
        self._fsync_seconds = reg.histogram(
            "repro_wal_fsync_seconds", "individual WAL fsync duration"
        )
        self._rotate_seconds = reg.histogram(
            "repro_wal_rotate_seconds",
            "segment rotation duration (close + final fsync)",
        )
        reg.gauge_fn(
            "repro_wal_records_written",
            lambda: self.records_written,
            "WAL records appended this process lifetime",
        )
        reg.gauge_fn(
            "repro_wal_bytes_written",
            lambda: self.bytes_written,
            "WAL bytes appended this process lifetime",
        )
        reg.gauge_fn(
            "repro_wal_rotations",
            lambda: self.rotations,
            "WAL segment rotations this process lifetime",
        )
        reg.gauge_fn(
            "repro_wal_last_seq",
            lambda: self.last_seq,
            "highest acknowledged WAL record sequence number",
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return self.last_seq + 1

    def _open_segment(self) -> None:
        path = self.directory / f"{self.prefix}-{self.next_seq:08d}.wal"
        self._handle = self._open_fn(path, "wb")
        self._handle.write(_MAGIC)
        self._segment_records_written = 0
        self._tail_torn = False

    def _close_segment(self, *, sync: bool) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            handle.flush()
            if sync and self.fsync != "never":
                with self._fsync_seconds.time():
                    os.fsync(handle.fileno())
        finally:
            handle.close()

    def append(self, samples) -> int:
        """Durably record one ingest batch; returns its sequence number.

        ``samples`` is the exact list of sparse ``(indices, values)``
        samples about to be fed to ``fit_sparse`` — record boundaries *are*
        call boundaries, the replay-determinism contract.  The record is
        flushed to the OS before the call returns (fsynced too under
        ``fsync="always"``).  On a failed write the batch is *not*
        acknowledged: the broken segment is abandoned and the next append
        starts a fresh one, so a retry is safe.
        """
        if self._tail_torn:
            # A previous append failed mid-record; never extend a torn
            # tail — close it (best-effort) and start a fresh segment.
            try:
                self._close_segment(sync=False)
            except OSError:
                self._handle = None
            self._open_segment()
        if self._handle is None:
            self._open_segment()
        started = time.perf_counter()
        payload = _encode_payload(self.next_seq, samples)
        record = _HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF, len(payload)) + payload
        try:
            self._handle.write(record)
            self._handle.flush()
            if self.fsync == "always":
                with self._fsync_seconds.time():
                    os.fsync(self._handle.fileno())
        except OSError:
            self._tail_torn = True
            raise
        self._append_seconds.observe(time.perf_counter() - started)
        self.last_seq += 1
        self.records_written += 1
        self.bytes_written += len(record)
        self._segment_records_written += 1
        if self._segment_records_written >= self.rotate_every:
            self.rotate()
        return self.last_seq

    def rotate(self) -> None:
        """Close the current segment (fsyncing it unless ``fsync='never'``)."""
        if self._handle is not None:
            with self._rotate_seconds.time():
                self._close_segment(sync=True)
            self.rotations += 1

    def sync(self) -> None:
        """Flush and fsync the open segment without closing it."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync != "never":
                with self._fsync_seconds.time():
                    os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync and close the open segment."""
        self._close_segment(sync=True)

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read / maintenance
    # ------------------------------------------------------------------
    def records(self, *, after: int = -1) -> Iterator[tuple[int, list]]:
        """Replay acknowledged records with ``seq > after`` (flushes first
        so the open segment's records are visible)."""
        if self._handle is not None:
            self._handle.flush()
        return replay_journal(self.directory, prefix=self.prefix, after=after)

    def segments(self) -> list[Path]:
        """Existing segment paths, oldest first."""
        return [path for _, path in _segments(self.directory, self.prefix)]

    def prune_through(self, seq: int) -> list[Path]:
        """Delete segments whose records are *all* ``<= seq`` (covered by a
        checkpoint).  The segment containing ``seq + 1`` onward is kept.
        Returns the deleted paths.
        """
        entries = _segments(self.directory, self.prefix)
        deleted = []
        for index, (first_seq, path) in enumerate(entries):
            # A segment is fully covered iff the *next* segment starts at
            # or below seq + 1 (its own records end where the next begins).
            is_open = (
                self._handle is not None and index == len(entries) - 1
            )
            next_first = (
                entries[index + 1][0] if index + 1 < len(entries) else None
            )
            if is_open or next_first is None or next_first > seq + 1:
                continue
            path.unlink(missing_ok=True)
            deleted.append(path)
        return deleted

    def stats(self) -> dict:
        """JSON-ready counters for the serving ``/stats`` surface."""
        return {
            "last_seq": self.last_seq,
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
            "rotations": self.rotations,
            "segments": len(self.segments()),
            "fsync": self.fsync,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestJournal({self.directory}, last_seq={self.last_seq}, "
            f"segments={len(self.segments())})"
        )
