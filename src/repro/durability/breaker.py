"""Ingest circuit breaker — fail fast while the write path is broken.

When the write side starts throwing (disk full under the WAL, a poisoned
batch, a wedged pane rotation), every further ingest attempt burns a
request thread on the same failure and stalls upstream producers behind
the write lock.  :class:`CircuitBreaker` implements the standard
three-state pattern:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures, calls are
  rejected instantly (:class:`CircuitOpenError`, which the HTTP layer maps
  to 503 + ``Retry-After``) until ``reset_after`` seconds pass.
* **half-open** — the first call after the cooldown is let through as a
  probe; success closes the circuit, failure re-opens it for another full
  cooldown.

The clock is injectable (``time_fn``) so the fault-injection suite drives
state transitions deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry, NullRegistry

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(Exception):
    """The breaker is open: the protected operation is failing; retry later.

    ``retry_after`` is the remaining cooldown in seconds (the HTTP layer
    surfaces it as a ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the circuit.
    reset_after:
        Cooldown seconds before a half-open probe is allowed.
    time_fn:
        Monotonic clock (injectable for deterministic tests).
    name:
        Label used in error messages, stats and metric labels.
    registry:
        Optional :class:`repro.obs.MetricsRegistry` receiving the breaker's
        state-transition counters
        (``repro_breaker_transitions_total{breaker=..., to=...}`` with
        ``to`` one of ``open`` / ``reopened`` / ``closed``) and
        ``repro_breaker_rejections_total``.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after: float = 30.0,
        time_fn=time.monotonic,
        name: str = "ingest",
        registry: MetricsRegistry | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after < 0:
            raise ValueError(f"reset_after must be >= 0, got {reset_after}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self.name = name
        self._time = time_fn
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        reg = registry if registry is not None else NullRegistry()
        labels = {"breaker": name}
        self._trips_total = reg.counter(
            "repro_breaker_transitions_total",
            "circuit state transitions by destination",
            labels={**labels, "to": "open"},
        )
        self._reopens_total = reg.counter(
            "repro_breaker_transitions_total",
            "circuit state transitions by destination",
            labels={**labels, "to": "reopened"},
        )
        self._closes_total = reg.counter(
            "repro_breaker_transitions_total",
            "circuit state transitions by destination",
            labels={**labels, "to": "closed"},
        )
        self._rejections_total = reg.counter(
            "repro_breaker_rejections_total",
            "calls rejected while the circuit was open",
            labels=labels,
        )
        self.rejections = 0
        self.trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._time() - self._opened_at >= self.reset_after:
            return "half-open"
        return "open"

    def before_call(self) -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open; lets a
        single probe through when half-open."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half-open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            self.rejections += 1
            self._rejections_total.inc()
            remaining = self.reset_after - (self._time() - self._opened_at)
            raise CircuitOpenError(
                f"{self.name} circuit is open after "
                f"{self._consecutive_failures} consecutive failure(s); "
                f"retry in {max(0.0, remaining):.1f}s",
                retry_after=remaining if state == "open" else self.reset_after,
            )

    def record_success(self) -> None:
        with self._lock:
            if self._opened_at is not None:
                # A successful half-open probe: the circuit recovers.
                self._closes_total.inc()
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if (
                self._consecutive_failures >= self.failure_threshold
                or self._opened_at is not None  # failed half-open probe
            ):
                if self._opened_at is None:
                    self.trips += 1
                    self._trips_total.inc()
                else:
                    self._reopens_total.inc()
                self._opened_at = self._time()

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` under the breaker's discipline."""
        self.before_call()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_after": self.reset_after,
                "rejections": self.rejections,
                "trips": self.trips,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name}, state={self.state})"
