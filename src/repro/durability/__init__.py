"""Crash-safe durability tier: WAL, checksummed artifacts, fault injection.

The streaming estimator is single-pass over an unreplayable stream —
state lost to a crash or a corrupt file is gone forever.  This package
closes that hole in layers:

* :mod:`~repro.durability.integrity` — per-array CRC32 + manifest digest
  inside every ``.npz`` artifact; atomic :func:`write_npz`;
  :class:`IntegrityError` naming the file and reason.
* :mod:`~repro.durability.journal` — :class:`IngestJournal`, the
  batch-aligned write-ahead log (torn tails dropped, gaps fatal).
* :mod:`~repro.durability.durable` — :class:`DurableSketcher`, checkpoint
  + WAL replay around a sketcher or pane ring; recovery is bit-identical
  to the uninterrupted run.
* :mod:`~repro.durability.breaker` — :class:`CircuitBreaker` for the
  serving ingest path (fail fast, 503 + ``Retry-After``).
* :mod:`~repro.durability.faults` — deterministic fault injection
  (simulated crashes, disk-full, bit flips, dropped connections) driving
  the crash-recovery property suite and ``benchmarks/bench_faults.py``.
"""

from repro.durability.breaker import CircuitBreaker, CircuitOpenError
from repro.durability.integrity import (
    INTEGRITY_MEMBERS,
    IntegrityError,
    crc32_array,
    integrity_payload,
    verify_arrays,
    write_npz,
)
from repro.durability.journal import IngestJournal, journal_end_seq, replay_journal


def __getattr__(name):
    # DurableSketcher sits above repro.distributed (which itself uses the
    # integrity layer below), so it loads lazily to keep the package
    # importable from either direction.
    if name == "DurableSketcher":
        from repro.durability.durable import DurableSketcher

        return DurableSketcher
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DurableSketcher",
    "INTEGRITY_MEMBERS",
    "IntegrityError",
    "crc32_array",
    "integrity_payload",
    "verify_arrays",
    "write_npz",
    "IngestJournal",
    "journal_end_seq",
    "replay_journal",
]
