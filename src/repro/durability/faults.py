"""Deterministic fault injection — every failure mode on demand, seeded.

The durability tier's guarantees are only as good as the failures they
were tested against.  This module injects the interesting ones without
monkeypatching or real crashes, all driven by explicit parameters or a
seeded :class:`random.Random` so every test run reproduces exactly:

* :class:`FaultyFS` — an ``open()``-compatible factory whose file handles
  tear writes at a byte budget (:class:`SimulatedCrash` — the
  kill-at-random-batch primitive) or run out of disk
  (``errno.ENOSPC`` ``OSError``, healable — the circuit-breaker
  primitive).  Plug it into ``IngestJournal(open_fn=...)`` /
  ``DurableSketcher(open_fn=...)``.
* :func:`flip_byte` / :func:`truncate_file` — in-place file corruptors for
  bit-rot and torn-copy tests (conformance suite, checkpoint walk-back).
* :class:`Flaky` — a callable wrapper failing the first N invocations;
  wraps ``urllib``-style openers for dropped-connection client-retry
  tests, or a refresh hook for hung/failing-refresh degraded-serving
  tests.

Nothing here is test-only scaffolding in the pejorative sense: the
injector is shipped so operators can rehearse recovery against a copy of
production state.
"""

from __future__ import annotations

import errno
import random
from pathlib import Path

__all__ = [
    "SimulatedCrash",
    "FaultyFS",
    "Flaky",
    "flip_byte",
    "truncate_file",
]


class SimulatedCrash(BaseException):
    """The injected process-death point was reached mid-write.

    Deliberately a ``BaseException``: a simulated crash models the process
    dying, so no library ``except Exception`` recovery path may swallow it
    — the test harness alone catches it, then exercises recovery from the
    bytes actually on disk.
    """


class _FaultyFile:
    """File-object proxy that routes writes through the owning FS's
    fault schedule and delegates everything else."""

    def __init__(self, handle, fs: "FaultyFS"):
        self._handle = handle
        self._fs = fs

    def write(self, data) -> int:
        return self._fs._write(self._handle, bytes(data))

    def __getattr__(self, name):
        return getattr(self._handle, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._handle.close()


class FaultyFS:
    """``open()``-compatible factory injecting deterministic write faults.

    Parameters
    ----------
    kill_at_bytes:
        Cumulative write budget (bytes, across every file opened for
        writing through this FS).  The write that would cross it persists
        only the prefix that fits (a *torn write* — flushed so the bytes
        really land), then raises :class:`SimulatedCrash`.  ``None``
        disables.  Any byte offset is a valid kill point: mid-magic,
        mid-header, mid-payload.
    disk_full_at_bytes:
        Budget after which writes raise ``OSError(ENOSPC)`` (also tearing
        the prefix that "fit").  Unlike a crash the process survives, so
        this exercises the journal's torn-tail re-segmenting and the
        ingest circuit breaker.  :meth:`heal` models space being freed.

    ``bytes_written`` / ``crashed`` / ``disk_full_hits`` expose what
    actually happened for assertions.
    """

    def __init__(
        self,
        *,
        kill_at_bytes: int | None = None,
        disk_full_at_bytes: int | None = None,
    ):
        self.kill_at_bytes = kill_at_bytes
        self.disk_full_at_bytes = disk_full_at_bytes
        self.bytes_written = 0
        self.crashed = False
        self.disk_full_hits = 0

    def __call__(self, path, mode: str = "r", *args, **kwargs):
        handle = open(path, mode, *args, **kwargs)
        if any(flag in mode for flag in ("w", "a", "+", "x")):
            return _FaultyFile(handle, self)
        return handle

    # ------------------------------------------------------------------
    def _budget(self) -> int | None:
        limits = [
            limit
            for limit in (self.kill_at_bytes, self.disk_full_at_bytes)
            if limit is not None
        ]
        return min(limits) if limits else None

    def _write(self, handle, data: bytes) -> int:
        budget = self._budget()
        if budget is not None and self.bytes_written + len(data) > budget:
            keep = max(0, budget - self.bytes_written)
            if keep:
                handle.write(data[:keep])
            handle.flush()
            self.bytes_written += keep
            if (
                self.kill_at_bytes is not None
                and budget == self.kill_at_bytes
            ):
                self.crashed = True
                raise SimulatedCrash(
                    f"simulated process death after {self.bytes_written} "
                    "bytes (torn write on disk)"
                )
            self.disk_full_hits += 1
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        written = handle.write(data)
        self.bytes_written += len(data)
        return written

    def heal(self) -> None:
        """Clear the disk-full condition (space was freed): the budget is
        re-based so subsequent writes succeed."""
        self.disk_full_at_bytes = None


class Flaky:
    """Callable wrapper that fails its first ``failures`` invocations.

    ``exc_factory`` builds the exception each time (default: a
    ``ConnectionResetError``, the dropped-connection flavour).  Wrap
    ``urllib.request.urlopen`` and hand it to
    ``ServingClient(opener=...)`` to test retry/backoff, or wrap a refresh
    hook with ``exc_factory=TimeoutError`` to model a hung refresh.
    ``calls`` and ``faults`` count what happened.
    """

    def __init__(self, fn, *, failures: int = 1, exc_factory=None):
        self.fn = fn
        self.failures = int(failures)
        self.exc_factory = exc_factory or (
            lambda: ConnectionResetError("injected: connection dropped")
        )
        self.calls = 0
        self.faults = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.faults < self.failures:
            self.faults += 1
            raise self.exc_factory()
        return self.fn(*args, **kwargs)


# ----------------------------------------------------------------------
# In-place file corruptors (bit rot / torn copies)
# ----------------------------------------------------------------------
def flip_byte(
    path,
    *,
    seed: int = 0,
    rng: random.Random | None = None,
    offset: int | None = None,
) -> int:
    """Flip one random bit of one byte of ``path`` in place.

    The byte is chosen by the seeded ``rng`` unless ``offset`` pins it
    (e.g. ``size // 2`` to guarantee landing inside an archive's payload
    rather than on a semantically dead zip header byte).  Returns the
    corrupted offset.  Seeded, so a failing corruption test reproduces
    byte-for-byte.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    rng = rng or random.Random(seed)
    offset = rng.randrange(len(data)) if offset is None else int(offset)
    data[offset] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return offset


def truncate_file(path, *, keep: int | None = None, fraction: float = 0.5) -> int:
    """Truncate ``path`` in place to ``keep`` bytes (or ``fraction`` of its
    size).  Returns the new size — the torn-copy / torn-write fixture."""
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * fraction) if keep is None else int(keep)
    keep = max(0, min(size, keep))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep
