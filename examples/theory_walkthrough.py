"""Walk through the paper's theory: bounds, Algorithm 3, SNR dynamics.

For a concrete problem instance this prints

1. the saturation probability and what it forces on ``delta`` (section 6.4),
2. the Theorem-1 exploration-length trade-off,
3. the Theorem-2 threshold-slope trade-off,
4. the Theorem-3 SNR-amplification trajectory vs a measured run.

Run:  python examples/theory_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.covariance import CovarianceSketcher, flat_true_correlations
from repro.core import build_estimator
from repro.data import BlockCorrelationModel
from repro.hashing import num_pairs
from repro.theory import (
    ProblemModel,
    SNRRecorder,
    plan_hyperparameters,
    saturation_probability,
    snr_count_sketch,
    theorem1_miss_probability,
    theorem2_escape_probability,
    theorem3_snr_ratio,
)


def main() -> None:
    d, n = 150, 4000
    data_model = BlockCorrelationModel.from_alpha(
        d, alpha=0.01, rho_range=(0.6, 0.95), seed=3
    )
    p = num_pairs(d)
    model = ProblemModel(
        p=p, alpha=data_model.alpha, u=data_model.signal_strength,
        sigma=1.0, T=n, num_tables=5, num_buckets=p // 15,
    )

    print(f"problem: p={p:,} pairs, alpha={model.alpha:.3%}, u={model.u:.2f}, "
          f"sketch 5 x {model.num_buckets}")
    sp = saturation_probability(model)
    print(f"saturation probability 1 - p0^K = {sp:.4f} "
          f"(delta must exceed it; section 8.1 picks max(1.01 SP, 0.05))\n")

    print("Theorem 1 - miss probability at the end of exploration:")
    for t0 in (25, 50, 100, 400, 1600):
        bound = theorem1_miss_probability(model, t0, 1e-4)
        print(f"  T0={t0:5d}: P[miss at T0] <= {bound:.4f}")

    print("\nTheorem 2 - escape probability during sampling (T0=200):")
    for theta_frac in (0.1, 0.3, 0.5, 0.7, 0.9):
        theta = theta_frac * model.u
        bound = theorem2_escape_probability(model, 200, 1e-4, theta)
        print(f"  theta={theta:.3f} ({theta_frac:.0%} of u): "
              f"P[filtered later] <= {bound:.4f}")

    plan = plan_hyperparameters(model, delta=max(1.01 * sp, 0.05))
    print(f"\nAlgorithm 3 plan: T0={plan.exploration_length}, "
          f"theta={plan.theta:.3f}, delta={plan.delta:.3f}, "
          f"delta*={plan.delta_star:.3f}")

    print(f"\nSNR of the raw stream (what CS ingests): "
          f"{snr_count_sketch(model):.4f}")
    print("Theorem 3 - guaranteed SNR amplification of ASCS over CS:")
    for t in (plan.exploration_length, n // 4, n // 2, n):
        t = max(t, plan.exploration_length)
        ratio = theorem3_snr_ratio(
            model, t, plan.exploration_length, plan.theta, plan.delta_star
        )
        print(f"  t={t:5d}: SNR_ASCS / SNR_CS >= {ratio:.3f}")

    # Measure the realised SNR trajectory on an actual run.
    data = data_model.sample(n)
    truth = flat_true_correlations(data)
    signals = np.argsort(-truth)[: data_model.num_signal_pairs]

    measured = {}
    for method in ("cs", "ascs"):
        recorder = SNRRecorder(signals, window=n // 8)
        kwargs = dict(seed=1, observer=recorder)
        if method == "ascs":
            kwargs["plan"] = plan
        est = build_estimator(method, n, 5, model.num_buckets, **kwargs)
        sk = CovarianceSketcher(d, est, mode="correlation", batch_size=50)
        sk.fit_dense(data)
        recorder.flush()
        measured[method] = dict(zip(*recorder.curve()))

    print("\nmeasured SNR of inserted updates (window averages):")
    print(f"{'t':>6}  {'CS':>8}  {'ASCS':>8}  {'ratio':>7}")
    for t in sorted(measured["ascs"]):
        cs_snr = measured["cs"].get(t)
        if cs_snr:
            ratio = measured["ascs"][t] / cs_snr
            print(f"{t:6d}  {cs_snr:8.4f}  {measured['ascs'][t]:8.4f}  {ratio:7.2f}")


if __name__ == "__main__":
    main()
