"""Serving quickstart: fit -> snapshot -> query -> serve over HTTP.

Fits a stream with planted correlations, freezes an immutable
:class:`repro.serving.SketchSnapshot`, queries it through the cached
:class:`repro.serving.QueryEngine` (pair lookups, per-feature neighbors,
thresholded range queries), then stands up the stdlib HTTP server around a
double-buffered :class:`repro.serving.ServingEstimator` and drives it with
the bundled client — including a live ingest + atomic snapshot swap.

Run:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import QueryEngine, ServingEstimator, sketch_correlations
from repro.data import BlockCorrelationModel
from repro.serving import ServingClient, serve_in_background


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Fit: one streaming pass, exactly like examples/quickstart.py.
    # ------------------------------------------------------------------
    model = BlockCorrelationModel.from_alpha(300, alpha=0.01, seed=7)
    data = model.sample(4000)
    result = sketch_correlations(
        data, memory_floats=20_000, method="ascs", alpha=model.alpha,
        top_k=25, seed=1,
    )
    print(f"fitted: {data.shape[0]} samples x {data.shape[1]} features")

    # ------------------------------------------------------------------
    # 2. Snapshot: freeze the read path.  The snapshot is immutable —
    #    further ingestion into result.estimator can never change it.
    # ------------------------------------------------------------------
    snapshot = result.snapshot(top_index=512)
    print(f"snapshot: {snapshot.meta()}")

    # ------------------------------------------------------------------
    # 3. Query through the engine (LRU cache + single-gather planner).
    # ------------------------------------------------------------------
    engine = QueryEngine(snapshot, cache_size=4096)
    i, j, estimates = engine.top_pairs(5)
    print("\ntop-5 pairs:")
    for a, b, est in zip(i, j, estimates):
        print(f"  ({a:3d},{b:3d})  estimate={est:+.3f}")

    anchor = int(i[0])
    partners, nbr_est = engine.top_neighbors(anchor, k=5)
    print(f"\nneighbors of feature {anchor}:")
    for partner, est in zip(partners, nbr_est):
        print(f"  {anchor:3d} ~ {int(partner):3d}  estimate={est:+.3f}")

    hi_i, hi_j, hi_est = engine.pairs_above(0.5)
    print(f"\npairs with estimate >= 0.5: {hi_i.size}")
    print(f"single pair (scalar fast path): "
          f"corr({anchor},{int(partners[0])}) = "
          f"{engine.query_pair(min(anchor, int(partners[0])), max(anchor, int(partners[0]))):+.3f}")
    print(f"engine stats: {engine.stats()['cache']}")

    # ------------------------------------------------------------------
    # 4. Serve: double-buffered ingest/serve behind the HTTP front end.
    # ------------------------------------------------------------------
    serving = ServingEstimator(
        result.sketcher, top_index=512, cache_size=4096
    )
    serving.refresh()
    server, _ = serve_in_background(serving)
    client = ServingClient(server.url)
    print(f"\nserving on {server.url}")
    print(f"  /health    -> {client.health()}")
    print(f"  /pair      -> {client.pair(i[0], j[0]):+.3f} "
          f"(matches engine: {client.pair(i[0], j[0]) == serving.query_pair(i[0], j[0])})")
    partners_http, _ = client.neighbors(anchor, k=3)
    print(f"  /neighbors -> feature {anchor} ~ {partners_http.tolist()}")

    # Live ingest + atomic snapshot swap, all over HTTP.
    extra = model.sample(200)
    rows = [(np.flatnonzero(row), row[np.flatnonzero(row)]) for row in extra]
    client.ingest(rows[:50])
    swapped = client.refresh()
    print(f"  /refresh   -> now serving snapshot {swapped['snapshot_id']} "
          f"(swap #{swapped['swap_count']}, "
          f"{swapped['swap_seconds'] * 1e3:.1f} ms)")
    server.shutdown()
    print("done")


if __name__ == "__main__":
    main()
