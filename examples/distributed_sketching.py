"""Distributed scenario: shard the stream, sketch per worker, merge.

Count sketches are linear, so covariance sketching parallelises trivially:
each worker streams its shard into a sketch built from the SAME seed, the
sketches are persisted, and a reducer merges them into the exact sketch the
full stream would have produced.  (This is the deployment mode the paper's
trillion-scale runs imply — one pass, embarrassingly parallel.)

ASCS's sampling phase is sequential-adaptive, so the canonical distributed
recipe is: CS on workers for the exploration-grade pass, merge, then a
final ASCS pass (or run ASCS per shard and accept per-shard thresholds —
shown below, with quality measured against ground truth).

The manual map/reduce below is what `repro.distributed.fit_sparse_sharded`
automates for sparse streams — partitioning, a multiprocessing pool and
the full merge laws (counters, moments, top-k pool, ASCS sampler state);
the last section demonstrates it.

Run:  python examples/distributed_sketching.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.estimator import SketchEstimator
from repro.covariance import CovarianceSketcher, flat_true_correlations
from repro.distributed import fit_sparse_sharded
from repro.data import BlockCorrelationModel
from repro.evaluation import mean_top_true_value, rank_all_pairs
from repro.sketch import CountSketch, load_sketch, save_sketch

NUM_WORKERS = 4


def main() -> None:
    model = BlockCorrelationModel.from_alpha(250, alpha=0.01, seed=17)
    data = model.sample(6000)
    n, d = data.shape
    truth = flat_true_correlations(data)
    shards = np.array_split(np.arange(n), NUM_WORKERS)
    print(f"{n} samples x {d} features, {NUM_WORKERS} workers, "
          f"{len(shards[0])} samples/shard")

    workdir = Path(tempfile.mkdtemp(prefix="repro-shards-"))

    # --- map: each worker sketches its shard (same seed => mergeable) ----
    for w, rows in enumerate(shards):
        sketch = CountSketch(5, 6000, seed=123)
        estimator = SketchEstimator(sketch, total_samples=n)
        sketcher = CovarianceSketcher(d, estimator, mode="covariance",
                                      batch_size=64)
        sketcher.fit_dense(data[rows])
        save_sketch(sketch, workdir / f"worker{w}.npz")
        print(f"worker {w}: sketched {len(rows)} samples -> "
              f"{(workdir / f'worker{w}.npz').stat().st_size / 1024:.0f} KB")

    # --- reduce: merge the persisted sketches ----------------------------
    merged = load_sketch(workdir / "worker0.npz")
    for w in range(1, NUM_WORKERS):
        merged.merge(load_sketch(workdir / f"worker{w}.npz"))

    # --- verify: merged == single-pass sketch, bit for bit ---------------
    reference = CountSketch(5, 6000, seed=123)
    ref_est = SketchEstimator(reference, total_samples=n)
    CovarianceSketcher(d, ref_est, mode="covariance", batch_size=64).fit_dense(data)
    max_diff = np.abs(merged.table - reference.table).max()
    print(f"\nmerged vs single-pass sketch: max counter diff = {max_diff:.2e}")

    # --- retrieve top pairs from the merged sketch -----------------------
    merged_est = SketchEstimator(merged, total_samples=n)
    sk = CovarianceSketcher(d, merged_est, mode="covariance")
    ranked, _ = rank_all_pairs(sk)
    # covariance units == correlation units here (unit-variance features)
    quality = mean_top_true_value(ranked, truth, 50)
    print(f"mean true correlation of merged-sketch top-50: {quality:.3f}")

    # --- the one-call driver for sparse streams --------------------------
    # fit_sparse_sharded packages the whole recipe: batch-aligned
    # partitioning, a worker per shard (serial backend shown here is
    # bit-identical to fit_sparse; backend="process" runs a real
    # multiprocessing pool) and the merge laws for counters, moments and
    # the top-k candidate pool.
    sparse_samples = [
        (np.flatnonzero(row).astype(np.int64), row[np.flatnonzero(row)])
        for row in data[:1500]
    ]
    fit = fit_sparse_sharded(
        sparse_samples,
        d,
        num_tables=5,
        num_buckets=6000,
        seed=123,
        track_top=200,
        mode="covariance",
        n_workers=NUM_WORKERS,
        backend="process",
    )
    i, j, est = fit.top_pairs(5, scan=False)
    print("\nfit_sparse_sharded (process backend) top-5 pairs:")
    for a, b, e in zip(i, j, est):
        print(f"  ({a:3d},{b:3d})  estimate={e:+.4f}")


if __name__ == "__main__":
    main()
