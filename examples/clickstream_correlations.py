"""Click-through scenario: co-occurring URL attributes at tight memory.

Mirrors the paper's URL experiment (Table 2): a sparse binary attribute
stream where a handful of attribute groups co-occur (hosts, tokens, paths)
over a large noisy background.  The demo sweeps the sketch size to show the
paper's memory story: vanilla CS needs several times the memory that ASCS
needs to report clean top pairs.

Run:  python examples/clickstream_correlations.py
"""

from __future__ import annotations


from repro.covariance import pair_correlations
from repro.data import URLLikeStream
from repro.evaluation import run_sparse_method
from repro.hashing import index_to_pair, num_pairs


def main() -> None:
    stream = URLLikeStream(
        dim=20_000,
        num_samples=10_000,
        num_groups=60,
        group_size=6,
        group_prob=0.5,
        member_prob=0.95,
        background_nnz=40,
        seed=5,
    )
    d, n = stream.dim, stream.num_samples
    print(f"stream: {n} samples, {d:,} binary attributes, "
          f"~{stream.average_nnz:.0f} set per sample")
    print(f"correlation matrix: {num_pairs(d):,} entries; "
          f"{stream.planted_pair_keys().size} planted strong pairs\n")

    stored = stream.materialize()  # evaluation only — the sketch is one-pass

    print(f"{'memory':>8}  {'method':>6}  {'top-500 mean corr':>18}  {'kept':>6}")
    for num_buckets in (20_000, 100_000, 400_000):
        for method in ("cs", "ascs"):
            keys, _, run = run_sparse_method(
                lambda: iter(stream), d, n, method, num_buckets,
                alpha=1e-5, u=0.5, top_k=500, track_top=4000, seed=2,
            )
            i, j = index_to_pair(keys, d)
            corr = pair_correlations(stored, i, j)
            memory_mb = 5 * num_buckets * 8 / 1e6
            print(f"{memory_mb:6.1f}MB  {method.upper():>6}  "
                  f"{corr.mean():18.3f}  {run.acceptance_rate:6.1%}")
    print("\nReading the sweep: at the mid budget ASCS already reports clean "
          "pairs while CS is noise-dominated — the paper's 'CS needs ~10x "
          "the memory' headline.")


if __name__ == "__main__":
    main()
