"""Quickstart: recover planted correlations from a stream in one call.

Generates a 300-feature dataset whose correlation matrix is sparse (the
paper's simulation setting), streams it once through ASCS with a 20,000
float memory budget (~45% of the 44,850 covariance entries), and checks the
reported top pairs against the planted ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import sketch_correlations
from repro.data import BlockCorrelationModel


def main() -> None:
    # A sparse covariance model: ~1% of pairs carry correlations in
    # (0.5, 1), everything else is independent noise.
    model = BlockCorrelationModel.from_alpha(300, alpha=0.01, seed=7)
    data = model.sample(5000)
    print(f"dataset: {data.shape[0]} samples x {data.shape[1]} features, "
          f"{model.num_signal_pairs} planted signal pairs")

    result = sketch_correlations(
        data,
        memory_floats=20_000,
        method="ascs",
        alpha=model.alpha,
        top_k=25,
        seed=1,
    )

    plan = result.plan
    print(f"\nAlgorithm 3 plan: T0={plan.exploration_length}, "
          f"tau0={plan.tau0:g}, theta={plan.theta:.3f} "
          f"(pilot u={result.pilot.u:.3f}, sigma={result.pilot.sigma:.3f})")
    print(f"sampling kept {result.estimator.acceptance_rate:.1%} of updates\n")

    truth = model.true_correlation()
    print(f"{'pair':>12}  {'estimate':>9}  {'true corr':>9}")
    for i, j, est in zip(result.pairs_i, result.pairs_j, result.estimates):
        print(f"({i:4d},{j:4d})  {est:9.3f}  {truth[i, j]:9.3f}")

    found = truth[result.pairs_i, result.pairs_j]
    print(f"\nmean true correlation of reported top-25: {found.mean():.3f}")
    hit_rate = np.mean(found >= 0.5)
    print(f"fraction of reported pairs that are planted signals: {hit_rate:.0%}")


if __name__ == "__main__":
    main()
