"""Genomics scenario: co-occurring k-mers in sequencing reads.

The paper's flagship dataset is a DNA 12-mer stream whose correlation
matrix has 144 trillion entries.  This example runs the same pipeline at
laptop scale: a random genome is sequenced into reads, each read becomes a
sparse k-mer count sample, and ASCS recovers the strongly co-occurring
k-mer pairs (overlapping k-mers from the same genome locus) one pass over
the reads — the feature space is 4^k, far too large to tabulate.

Run:  python examples/genomics_dna_kmers.py
"""

from __future__ import annotations


from repro.covariance import CovarianceSketcher, pair_correlations
from repro.data import DNAKmerStream
from repro.evaluation import sparse_pilot
from repro.core import build_estimator
from repro.hashing import index_to_pair, num_pairs
from repro.theory import ProblemModel, plan_hyperparameters

BASES = "ACGT"


def decode_kmer(code: int, k: int) -> str:
    """Turn a base-4 k-mer code back into its ACGT string."""
    out = []
    for _ in range(k):
        out.append(BASES[code % 4])
        code //= 4
    return "".join(reversed(out))


def main() -> None:
    stream = DNAKmerStream(
        genome_length=20_000, read_length=150, coverage=8.0, k=8, seed=42
    )
    d, reads = stream.dim, stream.num_reads
    p = num_pairs(d)
    print(f"genome {stream.genome_length}bp -> {reads} reads of "
          f"{stream.read_length}bp, k={stream.k}")
    print(f"feature space: {d:,} possible k-mers; "
          f"correlation matrix: {p:,} entries")

    # One pilot pass estimates the noise scale (section 7.2 relaxation),
    # then Algorithm 3 plans the exploration length and threshold slope.
    sigma = sparse_pilot(iter(stream), d, num_pilot=300)
    num_buckets = 120_000
    model = ProblemModel(
        p=p, alpha=1e-5, u=0.5, sigma=sigma, T=reads,
        num_tables=5, num_buckets=num_buckets,
    )
    plan = plan_hyperparameters(model, delta=0.05, delta_star=0.2)
    print(f"\nsigma estimate: {sigma:.3f}; plan: T0={plan.exploration_length} "
          f"reads, theta={plan.theta:.3f}")
    print(f"sketch: 5 x {num_buckets} buckets = "
          f"{5 * num_buckets * 8 / 1e6:.1f}MB "
          f"({5 * num_buckets / p:.2e} of the matrix)")

    estimator = build_estimator(
        "ascs", reads, 5, num_buckets, plan=plan, seed=1, track_top=4000
    )
    sketcher = CovarianceSketcher(d, estimator, mode="correlation", batch_size=16)
    sketcher.fit_sparse(iter(stream))

    keys, estimates = estimator.top_k(15)
    i, j = index_to_pair(keys, d)

    # Evaluate against the exact empirical correlations of the reads.
    stored = stream.materialize()
    true_corr = pair_correlations(stored, i, j)

    print(f"\n{'k-mer pair':>22}  {'estimate':>8}  {'true corr':>9}")
    for a, b, est, tc in zip(i, j, estimates, true_corr):
        print(f"{decode_kmer(int(a), 8)}-{decode_kmer(int(b), 8)}  "
              f"{est:8.3f}  {tc:9.3f}")
    print(f"\nmean true correlation of reported pairs: {true_corr.mean():.3f}")
    print(f"update acceptance during sampling: {estimator.acceptance_rate:.1%}")
    print("\n(Every k-mer pair within a read genuinely co-occurs, so millions "
          "of pairs carry real correlation here; the top-of-ranking estimates "
          "are inflated by selection over that pool — the reported *pairs* "
          "are what matters, and their true correlations are printed above.)")


if __name__ == "__main__":
    main()
